package obs

import (
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
	"sync/atomic"
)

// Route mounts one extra handler on the obs mux (e.g. the flight
// recorder's /dossiers and /events surfaces).
type Route struct {
	Pattern string
	Handler http.Handler
}

// Handler returns an http.Handler exposing the registry and the standard Go
// debug surfaces on an owned mux (net/http/pprof's blank import would
// register on http.DefaultServeMux, which a library must not touch):
//
//	/metrics      Prometheus text format v0.0.4
//	/debug/vars   expvar JSON (cmdline, memstats, …)
//	/debug/pprof/ CPU, heap, goroutine, … profiles
//
// Extra routes are mounted alongside and listed on the index page.
func Handler(reg *Registry, extra ...Route) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", ContentType)
		_ = reg.WriteProm(w)
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	index := "rtopex observability endpoint\n\n/metrics\n/debug/vars\n/debug/pprof/\n"
	for _, rt := range extra {
		if rt.Handler == nil || rt.Pattern == "" {
			continue
		}
		mux.Handle(rt.Pattern, rt.Handler)
		index += rt.Pattern + "\n"
	}
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		fmt.Fprint(w, index)
	})
	return mux
}

var (
	expvarOnce sync.Once
	expvarReg  atomic.Pointer[Registry]
)

// publishExpvar mirrors the registry under the expvar name "rtopex" so
// /debug/vars carries the same series as /metrics. expvar.Publish panics on
// duplicate names, so the closure is published exactly once and reads the
// current registry through an atomic pointer — the last registry passed
// wins for every subsequent /debug/vars render, even when tests (or a
// retried Serve) build several registries per process.
func publishExpvar(reg *Registry) {
	expvarReg.Store(reg)
	expvarOnce.Do(func() {
		expvar.Publish("rtopex", expvar.Func(func() any {
			if r := expvarReg.Load(); r != nil {
				return r.Snapshot()
			}
			return nil
		}))
	})
}

// Serve exposes Handler(reg, extra...) on addr (e.g. ":6060" or
// "127.0.0.1:0") and returns the bound address plus a shutdown func. The
// listener is up when Serve returns, so a caller can print the address and
// immediately be scraped.
func Serve(addr string, reg *Registry, extra ...Route) (boundAddr string, stop func(), err error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, err
	}
	publishExpvar(reg)
	srv := &http.Server{Handler: Handler(reg, extra...)}
	go func() { _ = srv.Serve(ln) }()
	return ln.Addr().String(), func() { _ = srv.Close() }, nil
}
