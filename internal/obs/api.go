package obs

import (
	"encoding/json"
	"net/http"
	"strconv"
	"strings"
	"time"
)

// The /api surface of the history plane: JSON endpoints over a TSDB and
// its SLO engine, mounted as obs.Route values so both obs.Serve
// (livebench) and hand-built daemon muxes (obscollect, sweepd) can carry
// them.
//
//	GET /api/series            stored series inventory
//	GET /api/query?series=&fn=&window=[&q=][&points=1]   one windowed query
//	GET /api/slo               objective status (targets, burn, budget)
//	GET /api/alerts            alert states with dossier cross-links
//
// Fleet daemons keep per-source and merged history; their endpoints accept
// ?source=<id> to select a source's timeline (default: the merged fleet).

// HistoryView is one queryable timeline: a TSDB plus the SLO engine
// evaluated over it (nil when the view has no objectives, e.g. a single
// fleet source).
type HistoryView struct {
	DB  *TSDB
	SLO *SLOEngine
}

// HistoryResolver maps an /api request's ?source= parameter ("" for the
// default timeline) to a view. Returning ok=false 404s the request.
type HistoryResolver func(source string) (HistoryView, bool)

// SingleHistory resolves every request to one process-local view,
// rejecting explicit ?source= selectors other than "" and "local".
func SingleHistory(db *TSDB, slo *SLOEngine) HistoryResolver {
	v := HistoryView{DB: db, SLO: slo}
	return func(source string) (HistoryView, bool) {
		if source != "" && source != "local" {
			return HistoryView{}, false
		}
		return v, true
	}
}

// APIRoutes builds the /api routes over a resolver.
func APIRoutes(resolve HistoryResolver) []Route {
	view := func(w http.ResponseWriter, r *http.Request) (HistoryView, bool) {
		v, ok := resolve(r.URL.Query().Get("source"))
		if !ok {
			http.Error(w, "unknown source", http.StatusNotFound)
		}
		return v, ok
	}
	writeJSON := func(w http.ResponseWriter, v any) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(v)
	}
	series := func(w http.ResponseWriter, r *http.Request) {
		v, ok := view(w, r)
		if !ok {
			return
		}
		writeJSON(w, map[string]any{
			"step_ms": v.DB.Step().Milliseconds(),
			"scrapes": v.DB.Scrapes(),
			"series":  v.DB.Series(),
		})
	}
	query := func(w http.ResponseWriter, r *http.Request) {
		v, ok := view(w, r)
		if !ok {
			return
		}
		q := r.URL.Query()
		id := q.Get("series")
		if id == "" {
			http.Error(w, "missing series=", http.StatusBadRequest)
			return
		}
		fn := QueryFn(q.Get("fn"))
		if fn == "" {
			fn = FnRate
		}
		window := time.Minute
		if ws := q.Get("window"); ws != "" {
			var err error
			if window, err = ParseWindow(ws); err != nil {
				http.Error(w, err.Error(), http.StatusBadRequest)
				return
			}
		}
		quant := 0.99
		if qs := q.Get("q"); qs != "" {
			var err error
			if quant, err = strconv.ParseFloat(qs, 64); err != nil || quant < 0 || quant > 1 {
				http.Error(w, "bad q= (want 0..1)", http.StatusBadRequest)
				return
			}
		}
		res := v.DB.Query(id, fn, window, quant)
		if q.Get("points") == "1" {
			res.Points = v.DB.Points(id, window)
		}
		writeJSON(w, res)
	}
	slo := func(w http.ResponseWriter, r *http.Request) {
		v, ok := view(w, r)
		if !ok {
			return
		}
		var objs []ObjectiveStatus
		if v.SLO != nil {
			objs = v.SLO.Status()
		}
		writeJSON(w, map[string]any{"slo_version": SLOVersion, "objectives": objs})
	}
	alerts := func(w http.ResponseWriter, r *http.Request) {
		v, ok := view(w, r)
		if !ok {
			return
		}
		var as []Alert
		if v.SLO != nil {
			as = v.SLO.Alerts()
		}
		writeJSON(w, map[string]any{"slo_version": SLOVersion, "alerts": as})
	}
	return []Route{
		{Pattern: "/api/series", Handler: http.HandlerFunc(series)},
		{Pattern: "/api/query", Handler: http.HandlerFunc(query)},
		{Pattern: "/api/slo", Handler: http.HandlerFunc(slo)},
		{Pattern: "/api/alerts", Handler: http.HandlerFunc(alerts)},
	}
}

// sparkGlyphs are the eight fill levels of a text sparkline, lowest first.
var sparkGlyphs = []rune("▁▂▃▄▅▆▇█")

// Sparkline renders points as a fixed-width text sparkline, downsampling
// by averaging into width cells and scaling min..max across the eight
// glyph levels (flat series render at the lowest level). Empty input
// renders as spaces.
func Sparkline(points []Point, width int) string {
	if width <= 0 {
		width = 40
	}
	if len(points) == 0 {
		return strings.Repeat(" ", width)
	}
	// Downsample: cell i averages the points mapped onto it.
	sums := make([]float64, width)
	counts := make([]int, width)
	for i, p := range points {
		cell := i * width / len(points)
		sums[cell] += p.V
		counts[cell]++
	}
	lo, hi := points[0].V, points[0].V
	for _, p := range points[1:] {
		if p.V < lo {
			lo = p.V
		}
		if p.V > hi {
			hi = p.V
		}
	}
	var b strings.Builder
	prev := sparkGlyphs[0]
	for i := 0; i < width; i++ {
		if counts[i] == 0 {
			// Sparse input: carry the previous level so the line stays
			// continuous instead of dropping to baseline between samples.
			b.WriteRune(prev)
			continue
		}
		v := sums[i] / float64(counts[i])
		level := 0
		if hi > lo {
			level = int((v - lo) / (hi - lo) * float64(len(sparkGlyphs)-1))
		}
		if level < 0 {
			level = 0
		}
		if level >= len(sparkGlyphs) {
			level = len(sparkGlyphs) - 1
		}
		prev = sparkGlyphs[level]
		b.WriteRune(prev)
	}
	return b.String()
}
