package obs

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"time"
)

// PushPath is the collector endpoint wire snapshots are POSTed to.
const PushPath = "/push"

// PusherConfig configures a push client.
type PusherConfig struct {
	// Addr is the collector's address ("host:port" or "http://host:port").
	Addr string
	// Source identifies this process; zero means DefaultSource().
	Source Source
	// Timeout bounds one HTTP attempt (default 5s).
	Timeout time.Duration
	// Retries is the number of re-attempts after a failed push (default 3).
	// Network errors and 5xx responses are retried; 4xx responses are not —
	// a rejected envelope will not improve by resending.
	Retries int
	// Backoff is the initial retry delay, doubling per attempt and capped
	// at 1s (default 100ms).
	Backoff time.Duration
	// AuthToken, when non-empty, is sent as a bearer Authorization header
	// with every push (the collector's -auth-token).
	AuthToken string
	// Client substitutes the HTTP client (tests); nil builds one from
	// Timeout.
	Client *http.Client
	// Logf, when non-nil, receives transient push warnings (retries).
	Logf func(format string, args ...any)
}

// Pusher streams registry snapshots to a collector with bounded
// retry/backoff. Pushes are serialized by an internal mutex so sequence
// numbers and snapshot states leave in a consistent order — a later push
// always carries a superset of a former one's counts. All methods are
// no-ops on a nil receiver, so call sites can wire an optional pusher
// without branching.
type Pusher struct {
	mu     sync.Mutex
	cfg    PusherConfig
	url    string
	client *http.Client
	seq    uint64
}

// NewPusher builds a push client for the collector at cfg.Addr.
func NewPusher(cfg PusherConfig) (*Pusher, error) {
	if cfg.Addr == "" {
		return nil, fmt.Errorf("obs: pusher needs a collector address")
	}
	base := cfg.Addr
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	base = strings.TrimSuffix(base, "/")
	if cfg.Source.ID == "" {
		cfg.Source = DefaultSource(cfg.Source.Labels...)
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = 5 * time.Second
	}
	if cfg.Retries < 0 {
		cfg.Retries = 0
	} else if cfg.Retries == 0 {
		cfg.Retries = 3
	}
	if cfg.Backoff <= 0 {
		cfg.Backoff = 100 * time.Millisecond
	}
	client := cfg.Client
	if client == nil {
		client = &http.Client{Timeout: cfg.Timeout}
	}
	return &Pusher{cfg: cfg, url: base + PushPath, client: client}, nil
}

// Source returns the identity pushes are labeled with.
func (p *Pusher) Source() Source {
	if p == nil {
		return Source{}
	}
	return p.cfg.Source
}

// Push snapshots reg and sends it. Nil receiver or nil registry is a no-op.
func (p *Pusher) Push(reg *Registry) error { return p.push(reg, false) }

// PushFinal sends reg's state marked final: the collector keeps a final
// source even past the staleness window, since no further pushes are
// expected from it.
func (p *Pusher) PushFinal(reg *Registry) error { return p.push(reg, true) }

func (p *Pusher) push(reg *Registry, final bool) error {
	if p == nil || reg == nil {
		return nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.seq++
	ws := &WireSnapshot{Source: p.cfg.Source, Seq: p.seq, Final: final, Snapshot: reg.Snapshot()}
	var body bytes.Buffer
	if err := EncodeWire(&body, ws); err != nil {
		return err
	}
	// The body is encoded once and resent verbatim, so a retry after a lost
	// response carries the same seq and the collector deduplicates it.
	policy := RetryPolicy{
		Attempts: p.cfg.Retries + 1,
		Backoff:  p.cfg.Backoff,
		Logf:     p.cfg.Logf,
	}
	return policy.Do(fmt.Sprintf("obs: push to %s", p.url), func() error {
		return p.attempt(body.Bytes())
	})
}

func (p *Pusher) attempt(body []byte) error {
	req, err := http.NewRequest(http.MethodPost, p.url, bytes.NewReader(body))
	if err != nil {
		return Permanent(err)
	}
	req.Header.Set("Content-Type", "application/json")
	AuthHeader(req, p.cfg.AuthToken)
	resp, err := p.client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		err := &pushStatusError{status: resp.StatusCode, msg: strings.TrimSpace(string(msg))}
		if resp.StatusCode >= 400 && resp.StatusCode < 500 {
			// A rejected envelope will not improve by resending.
			return Permanent(fmt.Errorf("obs: push to %s rejected: %v", p.url, err))
		}
		return err
	}
	return nil
}

type pushStatusError struct {
	status int
	msg    string
}

func (e *pushStatusError) Error() string {
	if e.msg == "" {
		return fmt.Sprintf("HTTP %d", e.status)
	}
	return fmt.Sprintf("HTTP %d: %s", e.status, e.msg)
}

// StartPeriodic pushes reg every interval until the returned stop func is
// called; stop sends one last final push and returns its error. Periodic
// push errors are transient (the next tick retries from current state) and
// reported via Logf only.
func (p *Pusher) StartPeriodic(reg *Registry, interval time.Duration) (stop func() error) {
	if p == nil || reg == nil {
		return func() error { return nil }
	}
	if interval <= 0 {
		interval = 2 * time.Second
	}
	done := make(chan struct{})
	finished := make(chan struct{})
	go func() {
		defer close(finished)
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				if err := p.Push(reg); err != nil && p.cfg.Logf != nil {
					p.cfg.Logf("%v", err)
				}
			case <-done:
				return
			}
		}
	}()
	var once sync.Once
	var finalErr error
	return func() error {
		once.Do(func() {
			close(done)
			<-finished
			finalErr = p.PushFinal(reg)
		})
		return finalErr
	}
}
