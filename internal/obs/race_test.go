package obs

import (
	"fmt"
	"sync"
	"testing"

	"rtopex/internal/trace"
)

// TestRegistryConcurrentExactCounts hammers one registry from many
// goroutines — counters, gauges, histograms, snapshots, and Prometheus
// renders all interleaved — and checks the merged totals are exact. Run
// under -race (make race does) this is the package's data-race probe.
func TestRegistryConcurrentExactCounts(t *testing.T) {
	const (
		goroutines = 16
		perG       = 2000
	)
	reg := NewRegistry()
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			c := reg.Counter("ops_total")
			mine := reg.Counter("ops_total", L("g", fmt.Sprint(g)))
			h := reg.Histogram("lat_us")
			for i := 0; i < perG; i++ {
				c.Inc()
				mine.Inc()
				reg.Gauge("last", L("g", fmt.Sprint(g))).Set(float64(i))
				h.Observe(float64(i%100 + 1))
				if i%500 == 0 {
					_ = reg.Snapshot()
				}
			}
		}(g)
	}
	// Concurrent readers while writers run.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 50; i++ {
			var sink discard
			_ = reg.WriteProm(&sink)
		}
	}()
	wg.Wait()

	if got := reg.Counter("ops_total").Value(); got != goroutines*perG {
		t.Fatalf("ops_total = %d, want %d", got, goroutines*perG)
	}
	for g := 0; g < goroutines; g++ {
		if got := reg.Counter("ops_total", L("g", fmt.Sprint(g))).Value(); got != perG {
			t.Fatalf("ops_total{g=%d} = %d, want %d", g, got, perG)
		}
	}
	if got := reg.Histogram("lat_us").Count(); got != goroutines*perG {
		t.Fatalf("histogram count = %d, want %d", got, goroutines*perG)
	}
}

type discard struct{}

func (discard) Write(p []byte) (int, error) { return len(p), nil }

// TestShardedRegistriesMergeExact models the sweep deployment: one registry
// per worker, merged at the end. The merged counts must equal a serial fill.
func TestShardedRegistriesMergeExact(t *testing.T) {
	const shards = 8
	regs := make([]*Registry, shards)
	var wg sync.WaitGroup
	for s := 0; s < shards; s++ {
		regs[s] = NewRegistry()
		wg.Add(1)
		go func(r *Registry, s int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				r.Counter("done_total").Inc()
				r.Histogram("v").Observe(float64(s*1000 + i))
			}
		}(regs[s], s)
	}
	wg.Wait()

	total := NewRegistry()
	for _, r := range regs {
		total.Merge(r)
	}
	if got := total.Counter("done_total").Value(); got != shards*1000 {
		t.Fatalf("merged counter = %d, want %d", got, shards*1000)
	}
	h := total.Histogram("v").Value()
	if h.Count != shards*1000 || h.Min != 0 || h.Max != shards*1000-1 {
		t.Fatalf("merged histogram: %+v", h)
	}
}

// TestLockedTracerConcurrentEmit hammers trace.Locked and the accountant
// (both advertised as goroutine-safe) from many emitters and checks the
// retained event count is exact.
func TestLockedTracerConcurrentEmit(t *testing.T) {
	const (
		goroutines = 8
		perG       = 1000
	)
	ring := trace.NewRing(0) // unbounded: every event retained
	acct := NewCoreAccountant()
	sink := trace.Locked(trace.Tee(ring, acct))
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				base := float64(i * 10)
				sink.Emit(trace.Event{Time: base, Core: g, Event: trace.EvStart})
				sink.Emit(trace.Event{Time: base + 5, Core: g, Event: trace.EvFinish})
			}
		}(g)
	}
	wg.Wait()

	if got := len(ring.Events()); got != goroutines*perG*2 {
		t.Fatalf("ring retained %d events, want %d", got, goroutines*perG*2)
	}
	for _, r := range acct.Reports(goroutines, 0) {
		if r.BusyUS != perG*5 {
			t.Fatalf("core %d busy = %v, want %d", r.Core, r.BusyUS, perG*5)
		}
	}
}
