package obs

import (
	"fmt"
	"net/http"
)

// Health endpoints shared by the fleet daemons:
//
//	/healthz  liveness — 200 as soon as the process serves HTTP
//	/readyz   readiness — 200 once ready() returns nil (store writable,
//	          lease ledger loaded, …), 503 with the reason otherwise
//
// Both are mounted unauthenticated: an orchestrator's probe has no bearer
// token, and neither endpoint exposes state beyond up/not-up.

// MountHealth registers /healthz and /readyz on mux. ready may be nil
// (always ready); otherwise it is called per probe and its error is the
// 503 body.
func MountHealth(mux *http.ServeMux, ready func() error) {
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/readyz", func(w http.ResponseWriter, r *http.Request) {
		if ready != nil {
			if err := ready(); err != nil {
				http.Error(w, err.Error(), http.StatusServiceUnavailable)
				return
			}
		}
		fmt.Fprintln(w, "ok")
	})
}
