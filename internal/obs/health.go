package obs

import (
	"fmt"
	"net/http"
)

// Health endpoints shared by the fleet daemons:
//
//	/healthz  liveness — 200 as soon as the process serves HTTP
//	/readyz   readiness — 200 once ready() returns nil (store writable,
//	          lease ledger loaded, …), 503 with the reason otherwise
//
// Both are mounted unauthenticated: an orchestrator's probe has no bearer
// token, and neither endpoint exposes state beyond up/not-up.

// MountHealth registers /healthz and /readyz on mux. ready may be nil
// (always ready); otherwise it is called per probe and its error is the
// 503 body.
func MountHealth(mux *http.ServeMux, ready func() error) {
	for _, rt := range HealthRoutes(ready) {
		mux.Handle(rt.Pattern, rt.Handler)
	}
}

// HealthRoutes returns the probe endpoints as obs.Route values, for
// callers that extend an obs.Serve mux instead of owning one (livebench).
func HealthRoutes(ready func() error) []Route {
	return []Route{
		{Pattern: "/healthz", Handler: http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			fmt.Fprintln(w, "ok")
		})},
		{Pattern: "/readyz", Handler: http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if ready != nil {
				if err := ready(); err != nil {
					http.Error(w, err.Error(), http.StatusServiceUnavailable)
					return
				}
			}
			fmt.Fprintln(w, "ok")
		})},
	}
}
