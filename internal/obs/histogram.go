package obs

import (
	"math"
	"sort"
	"sync"
)

// histSubBuckets is the number of linear subbuckets per power of two (the
// "log-linear" layout). A sample in bucket [lo, hi) has hi−lo = lo/M·…, so
// reporting the bucket midpoint bounds the relative error by 1/(2·M) ≈
// 1.6%. Unlike stats.Histogram, no a-priori [lo, hi) range is needed and
// two histograms merge exactly (bucket-wise count addition).
const histSubBuckets = 32

// Histogram is a streaming log-linear histogram: values are binned by
// (power-of-two exponent × linear subbucket), so the bin width tracks the
// magnitude of the data and the relative quantile error is bounded by
// 1/(2·histSubBuckets) regardless of range. It is safe for concurrent use.
//
// Zero and negative values get their own buckets (negative values mirror
// the positive layout), so gap series that touch zero survive intact.
// Non-finite samples (NaN, ±Inf) are counted separately and excluded from
// the distribution.
type Histogram struct {
	mu        sync.Mutex
	pos       map[int]uint64 // bucketIndex(v) → count, v > 0
	neg       map[int]uint64 // bucketIndex(−v) → count, v < 0
	zero      uint64
	count     uint64
	sum       float64
	min, max  float64 // valid when count > 0
	nonFinite uint64
}

// NewHistogram creates an empty histogram.
func NewHistogram() *Histogram {
	return &Histogram{pos: map[int]uint64{}, neg: map[int]uint64{}}
}

// bucketIndex maps v > 0 to its bucket: v = m·2^e with m ∈ [1,2) lands in
// index e·M + floor((m−1)·M). Exact powers of two open their octave.
func bucketIndex(v float64) int {
	frac, exp := math.Frexp(v) // v = frac·2^exp, frac ∈ [0.5, 1)
	m := 2 * frac              // ∈ [1, 2), v = m·2^(exp−1)
	sub := int((m - 1) * histSubBuckets)
	if sub >= histSubBuckets { // guard float rounding at the octave edge
		sub = histSubBuckets - 1
	}
	return (exp-1)*histSubBuckets + sub
}

// bucketBounds inverts bucketIndex: the half-open value range [lo, hi) of
// bucket i.
func bucketBounds(i int) (lo, hi float64) {
	e := floorDiv(i, histSubBuckets)
	s := i - e*histSubBuckets
	scale := math.Ldexp(1, e)
	lo = scale * (1 + float64(s)/histSubBuckets)
	hi = scale * (1 + float64(s+1)/histSubBuckets)
	return lo, hi
}

// bucketMid is the representative value reported for bucket i.
func bucketMid(i int) float64 {
	lo, hi := bucketBounds(i)
	return (lo + hi) / 2
}

func floorDiv(a, b int) int {
	q := a / b
	if a%b != 0 && (a < 0) != (b < 0) {
		q--
	}
	return q
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if math.IsNaN(v) || math.IsInf(v, 0) {
		h.nonFinite++
		return
	}
	if h.count == 0 {
		h.min, h.max = v, v
	} else {
		if v < h.min {
			h.min = v
		}
		if v > h.max {
			h.max = v
		}
	}
	h.count++
	h.sum += v
	switch {
	case v == 0:
		h.zero++
	case v > 0:
		h.pos[bucketIndex(v)]++
	default:
		h.neg[bucketIndex(-v)]++
	}
}

// Merge folds other into h: bucket counts add, so the result is identical
// to a histogram that observed both sample streams. Count, Min, Max and the
// buckets (hence all quantiles) merge exactly; Sum is a float accumulation
// and may differ from a serial fill in the last ulp.
func (h *Histogram) Merge(other *Histogram) { h.MergeValue(other.Value()) }

// Count returns the number of finite samples observed.
func (h *Histogram) Count() uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.count
}

// Sum returns the sum of finite samples.
func (h *Histogram) Sum() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.sum
}

// Mean returns the sample mean (NaN when empty).
func (h *Histogram) Mean() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 {
		return math.NaN()
	}
	return h.sum / float64(h.count)
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1) with relative error bounded
// by 1/(2·histSubBuckets). NaN when empty.
func (h *Histogram) Quantile(q float64) float64 { return h.Value().Quantile(q) }

// Value snapshots the histogram's current state.
func (h *Histogram) Value() HistogramValue {
	h.mu.Lock()
	defer h.mu.Unlock()
	v := HistogramValue{
		Count:     h.count,
		Sum:       h.sum,
		Zero:      h.zero,
		NonFinite: h.nonFinite,
	}
	if h.count > 0 {
		v.Min, v.Max = h.min, h.max
	}
	v.Pos = bucketCounts(h.pos)
	v.Neg = bucketCounts(h.neg)
	return v
}

// MergeValue folds a snapshot into h (the store-level merge path).
func (h *Histogram) MergeValue(v HistogramValue) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if v.Count > 0 {
		if h.count == 0 {
			h.min, h.max = v.Min, v.Max
		} else {
			if v.Min < h.min {
				h.min = v.Min
			}
			if v.Max > h.max {
				h.max = v.Max
			}
		}
	}
	h.count += v.Count
	h.sum += v.Sum
	h.zero += v.Zero
	h.nonFinite += v.NonFinite
	for _, b := range v.Pos {
		h.pos[b.Index] += b.Count
	}
	for _, b := range v.Neg {
		h.neg[b.Index] += b.Count
	}
}

// BucketCount is one occupied bucket of a histogram snapshot.
type BucketCount struct {
	Index int    `json:"i"`
	Count uint64 `json:"n"`
}

// bucketCounts flattens a bucket map into index-sorted pairs.
func bucketCounts(m map[int]uint64) []BucketCount {
	if len(m) == 0 {
		return nil
	}
	out := make([]BucketCount, 0, len(m))
	for i, n := range m {
		out = append(out, BucketCount{Index: i, Count: n})
	}
	sort.Slice(out, func(a, b int) bool { return out[a].Index < out[b].Index })
	return out
}

// HistogramValue is the serializable snapshot of a Histogram. Buckets are
// index-sorted, so the JSON encoding of a given state is deterministic.
type HistogramValue struct {
	Count     uint64        `json:"count"`
	Sum       float64       `json:"sum"`
	Min       float64       `json:"min"`
	Max       float64       `json:"max"`
	Zero      uint64        `json:"zero,omitempty"`
	NonFinite uint64        `json:"nonfinite,omitempty"`
	Pos       []BucketCount `json:"pos,omitempty"`
	Neg       []BucketCount `json:"neg,omitempty"`
}

// Mean returns the snapshot's sample mean (NaN when empty).
func (v HistogramValue) Mean() float64 {
	if v.Count == 0 {
		return math.NaN()
	}
	return v.Sum / float64(v.Count)
}

// Quantile returns the q-quantile of the snapshot: the representative value
// of the bucket holding the ⌈q·count⌉-th smallest sample, clamped to
// [Min, Max]. Relative error is bounded by 1/(2·histSubBuckets).
func (v HistogramValue) Quantile(q float64) float64 {
	if v.Count == 0 {
		return math.NaN()
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := uint64(math.Ceil(q * float64(v.Count)))
	if rank < 1 {
		rank = 1
	}
	var cum uint64
	clamp := func(x float64) float64 {
		if x < v.Min {
			return v.Min
		}
		if x > v.Max {
			return v.Max
		}
		return x
	}
	// Ascending value order: negatives by descending magnitude, zero, then
	// positives by ascending magnitude.
	for i := len(v.Neg) - 1; i >= 0; i-- {
		cum += v.Neg[i].Count
		if cum >= rank {
			return clamp(-bucketMid(v.Neg[i].Index))
		}
	}
	cum += v.Zero
	if cum >= rank {
		return 0
	}
	for _, b := range v.Pos {
		cum += b.Count
		if cum >= rank {
			return clamp(bucketMid(b.Index))
		}
	}
	return v.Max
}

func floatBits(f float64) uint64 { return math.Float64bits(f) }
func bitsFloat(b uint64) float64 { return math.Float64frombits(b) }
