package obs

import (
	"math"
	"reflect"
	"testing"
)

// lcg is a tiny deterministic generator for test sample streams (the tests
// must not depend on wall-clock or global RNG state).
type lcg uint64

func (l *lcg) next() float64 {
	*l = *l*6364136223846793005 + 1442695040888963407
	return float64(*l>>11) / float64(1<<53)
}

func TestBucketIndexRoundTrip(t *testing.T) {
	for _, v := range []float64{1e-6, 0.5, 1, 1.5, 2, 3, 1000, 2000.5, 7e9} {
		i := bucketIndex(v)
		lo, hi := bucketBounds(i)
		if v < lo || v >= hi {
			t.Errorf("v=%g landed in bucket %d = [%g, %g)", v, i, lo, hi)
		}
	}
}

func TestHistogramRelativeError(t *testing.T) {
	h := NewHistogram()
	var g lcg = 42
	want := make([]float64, 0, 5000)
	for i := 0; i < 5000; i++ {
		v := 10 + 1990*g.next() // µs-scale latencies
		h.Observe(v)
		want = append(want, v)
	}
	// The bucket midpoint is within 1/(2·M) of any sample in the bucket; the
	// quantile estimate inherits that relative error bound.
	const tol = 1.0 / (2 * histSubBuckets)
	for _, q := range []float64{0.01, 0.25, 0.5, 0.9, 0.99} {
		got := h.Quantile(q)
		exact := exactQuantile(want, q)
		if rel := math.Abs(got-exact) / exact; rel > tol {
			t.Errorf("q=%v: got %g, exact %g, rel err %.4f > %.4f", q, got, exact, rel, tol)
		}
	}
	if h.Count() != 5000 {
		t.Fatalf("count = %d", h.Count())
	}
}

func exactQuantile(xs []float64, q float64) float64 {
	s := append([]float64(nil), xs...)
	for i := 1; i < len(s); i++ { // insertion sort: n is small
		for j := i; j > 0 && s[j-1] > s[j]; j-- {
			s[j-1], s[j] = s[j], s[j-1]
		}
	}
	rank := int(math.Ceil(q*float64(len(s)))) - 1
	if rank < 0 {
		rank = 0
	}
	return s[rank]
}

// TestShardMergeMatchesSerial is the tentpole property: splitting a sample
// stream across shards and merging the shard histograms yields the same
// buckets, count, min, max — and therefore the same quantiles — as one
// histogram fed serially.
func TestShardMergeMatchesSerial(t *testing.T) {
	const shards = 7
	var g lcg = 99
	samples := make([]float64, 20000)
	for i := range samples {
		switch i % 50 {
		case 0:
			samples[i] = 0 // exercise the zero bucket
		case 1:
			samples[i] = -500 * g.next() // and negatives
		default:
			samples[i] = 2000 * g.next()
		}
	}

	serial := NewHistogram()
	for _, v := range samples {
		serial.Observe(v)
	}

	parts := make([]*Histogram, shards)
	for s := range parts {
		parts[s] = NewHistogram()
	}
	for i, v := range samples {
		parts[i%shards].Observe(v)
	}
	merged := NewHistogram()
	for _, p := range parts {
		merged.Merge(p)
	}

	sv, mv := serial.Value(), merged.Value()
	if sv.Count != mv.Count || sv.Min != mv.Min || sv.Max != mv.Max || sv.Zero != mv.Zero {
		t.Fatalf("scalar state differs: serial %+v merged %+v", sv, mv)
	}
	if !reflect.DeepEqual(sv.Pos, mv.Pos) || !reflect.DeepEqual(sv.Neg, mv.Neg) {
		t.Fatal("bucket maps differ between serial and merged")
	}
	for _, q := range []float64{0, 0.1, 0.5, 0.9, 0.99, 1} {
		if s, m := sv.Quantile(q), mv.Quantile(q); s != m {
			t.Errorf("q=%v: serial %g != merged %g", q, s, m)
		}
	}
	// Sum is float accumulation: equal up to ulp-scale reassociation error.
	if math.Abs(sv.Sum-mv.Sum) > 1e-6*math.Abs(sv.Sum) {
		t.Errorf("sums diverged beyond tolerance: %g vs %g", sv.Sum, mv.Sum)
	}
}

func TestHistogramEdgeCases(t *testing.T) {
	h := NewHistogram()
	if !math.IsNaN(h.Mean()) || !math.IsNaN(h.Quantile(0.5)) {
		t.Fatal("empty histogram should report NaN")
	}
	h.Observe(math.NaN())
	h.Observe(math.Inf(1))
	if h.Count() != 0 {
		t.Fatal("non-finite samples must not count")
	}
	v := h.Value()
	if v.NonFinite != 2 {
		t.Fatalf("nonFinite = %d, want 2", v.NonFinite)
	}

	h.Observe(5)
	if got := h.Quantile(0.5); got < 5*(1-1.0/histSubBuckets) || got > 5*(1+1.0/histSubBuckets) {
		t.Fatalf("single-sample quantile = %g, want ≈5", got)
	}
	// Quantiles clamp to observed min/max, never report beyond them.
	if h.Quantile(1) != 5 || h.Quantile(0) != 5 {
		t.Fatalf("extreme quantiles should clamp to the single sample: q0=%g q1=%g", h.Quantile(0), h.Quantile(1))
	}
}

func TestHistogramPowerOfTwoBoundary(t *testing.T) {
	// Exact powers of two must open their own octave (index M·e), and values
	// just below must land in the previous octave's last subbucket.
	for _, e := range []int{-3, 0, 1, 10} {
		v := math.Ldexp(1, e)
		if got, want := bucketIndex(v), e*histSubBuckets; got != want {
			t.Errorf("bucketIndex(2^%d) = %d, want %d", e, got, want)
		}
		below := math.Nextafter(v, 0)
		if got, want := bucketIndex(below), e*histSubBuckets-1; got != want {
			t.Errorf("bucketIndex(just below 2^%d) = %d, want %d", e, got, want)
		}
	}
}
