package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"
)

// Collector is the central merge point of the distributed observability
// plane: it ingests full-state wire snapshots from many sources, keeps the
// freshest envelope per source, and renders the exact cross-source merge on
// demand. Because pushes carry full state and Registry.Merge is exact for
// counters and histogram buckets, the merged view equals the registry one
// process would have built running all the sources' work — the sweep
// engine's parallel-equals-serial guarantee extended across machines.
//
// Staleness: a source that stops pushing without a final envelope (a
// crashed or partitioned worker) is evicted once it has been silent longer
// than the configured window, removing its partial contribution from the
// merge. Final sources are complete and never evicted.
type Collector struct {
	mu      sync.Mutex
	stale   time.Duration
	now     func() time.Time
	logf    func(format string, args ...any)
	src     map[string]*sourceState
	evicted int64
	started time.Time
	history *FleetHistory
}

type sourceState struct {
	ws       *WireSnapshot
	lastSeen time.Time
	pushes   int64
	dups     int64
}

// CollectorConfig configures a collector.
type CollectorConfig struct {
	// Stale is the eviction window for non-final sources; ≤ 0 disables
	// eviction.
	Stale time.Duration
	// Now substitutes the clock (tests); nil means time.Now.
	Now func() time.Time
	// Logf, when non-nil, receives ingest/eviction log lines.
	Logf func(format string, args ...any)
}

// NewCollector creates an empty collector.
func NewCollector(cfg CollectorConfig) *Collector {
	now := cfg.Now
	if now == nil {
		now = time.Now
	}
	return &Collector{
		stale:   cfg.Stale,
		now:     now,
		logf:    cfg.Logf,
		src:     map[string]*sourceState{},
		started: now(),
	}
}

// Ingest folds one validated envelope in. Duplicate or out-of-order pushes
// (seq ≤ the highest seen from that source) refresh the source's liveness
// but do not change its stored state — the retry idempotence the pusher
// relies on. Returns whether the envelope replaced the source's state.
func (c *Collector) Ingest(ws *WireSnapshot) (applied bool, err error) {
	if err := ws.Validate(); err != nil {
		return false, err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	st, ok := c.src[ws.Source.ID]
	if !ok {
		st = &sourceState{}
		c.src[ws.Source.ID] = st
		if c.logf != nil {
			c.logf("obs: new source %s", ws.Source)
		}
	}
	st.lastSeen = c.now()
	st.pushes++
	if st.ws != nil && ws.Seq <= st.ws.Seq {
		st.dups++
		return false, nil
	}
	st.ws = ws
	if ws.Final && c.logf != nil {
		c.logf("obs: source %s final (seq %d)", ws.Source, ws.Seq)
	}
	return true, nil
}

// EvictStale removes non-final sources silent longer than the staleness
// window and returns how many were evicted. Called lazily by every read
// path, so a collector that is only scraped still converges.
func (c *Collector) EvictStale() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.evictLocked()
}

func (c *Collector) evictLocked() int {
	if c.stale <= 0 {
		return 0
	}
	cutoff := c.now().Add(-c.stale)
	n := 0
	for id, st := range c.src {
		if st.ws != nil && st.ws.Final {
			continue
		}
		if st.lastSeen.Before(cutoff) {
			delete(c.src, id)
			c.evicted++
			n++
			if c.logf != nil {
				c.logf("obs: evicted stale source %s (silent > %s)", id, c.stale)
			}
		}
	}
	return n
}

// MergedRegistry merges every live source's snapshot into a fresh registry.
// Sources merge in sorted-ID order, so gauge collisions (last set wins)
// resolve deterministically.
func (c *Collector) MergedRegistry() *Registry {
	c.mu.Lock()
	c.evictLocked()
	snaps := make([]*Snapshot, 0, len(c.src))
	ids := make([]string, 0, len(c.src))
	for id := range c.src {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		if ws := c.src[id].ws; ws != nil {
			snaps = append(snaps, ws.Snapshot)
		}
	}
	c.mu.Unlock()
	reg := NewRegistry()
	for _, s := range snaps {
		reg.MergeSnapshot(s)
	}
	return reg
}

// Merged returns the cross-source merged snapshot.
func (c *Collector) Merged() *Snapshot { return c.MergedRegistry().Snapshot() }

// SourceStatus reports one tracked source.
type SourceStatus struct {
	Source     Source    `json:"source"`
	Seq        uint64    `json:"seq"`
	Final      bool      `json:"final,omitempty"`
	Pushes     int64     `json:"pushes"`
	Duplicates int64     `json:"duplicates,omitempty"`
	LastSeen   time.Time `json:"last_seen"`
}

// Sources lists the live sources in sorted-ID order.
func (c *Collector) Sources() []SourceStatus {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.evictLocked()
	out := make([]SourceStatus, 0, len(c.src))
	for _, st := range c.src {
		s := SourceStatus{Pushes: st.pushes, Duplicates: st.dups, LastSeen: st.lastSeen}
		if st.ws != nil {
			s.Source, s.Seq, s.Final = st.ws.Source, st.ws.Seq, st.ws.Final
		}
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Source.ID < out[j].Source.ID })
	return out
}

// Evicted returns the total sources evicted for staleness.
func (c *Collector) Evicted() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.evicted
}

// Dump is the archival form flushed on collector shutdown: the full merged
// snapshot plus the per-source ledger, as one JSON document.
type Dump struct {
	WireVersion int            `json:"wire_version"`
	Written     time.Time      `json:"written"`
	Evicted     int64          `json:"evicted,omitempty"`
	Sources     []SourceStatus `json:"sources"`
	Merged      *Snapshot      `json:"merged"`
}

// Dump captures the collector's full state for archival.
func (c *Collector) Dump() *Dump {
	return &Dump{
		WireVersion: WireVersion,
		Written:     c.now(),
		Evicted:     c.Evicted(),
		Sources:     c.Sources(),
		Merged:      c.Merged(),
	}
}

// WriteDump writes the archival JSON (indented, trailing newline).
func (c *Collector) WriteDump(w io.Writer) error {
	b, err := json.MarshalIndent(c.Dump(), "", "  ")
	if err != nil {
		return err
	}
	b = append(b, '\n')
	_, err = w.Write(b)
	return err
}

// Handler returns the collector's HTTP surface:
//
//	POST /push     ingest one wire snapshot
//	GET  /metrics  Prometheus text format of the merged view — exactly the
//	               merged worker registries, no collector-own series, so it
//	               can be diffed byte-for-byte against a single process
//	GET  /sources  per-source ledger as text
//	GET  /dump     archival JSON (same document the shutdown flush writes)
//	GET  /         live fleet dashboard (text)
func (c *Collector) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc(PushPath, func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "POST only", http.StatusMethodNotAllowed)
			return
		}
		ws, err := DecodeWire(http.MaxBytesReader(w, r.Body, maxWireBytes+1))
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		if _, err := c.Ingest(ws); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", ContentType)
		_ = c.MergedRegistry().WriteProm(w)
	})
	mux.HandleFunc("/sources", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		c.writeSources(w)
	})
	mux.HandleFunc("/dump", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = c.WriteDump(w)
	})
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		c.WriteDashboard(w)
	})
	return mux
}

func (c *Collector) writeSources(w io.Writer) {
	srcs := c.Sources()
	now := c.now()
	fmt.Fprintf(w, "%-32s %6s %7s %5s %8s  %s\n", "SOURCE", "SEQ", "PUSHES", "DUPS", "AGE", "STATE")
	for _, s := range srcs {
		state := "live"
		if s.Final {
			state = "final"
		}
		fmt.Fprintf(w, "%-32s %6d %7d %5d %8s  %s\n",
			s.Source.String(), s.Seq, s.Pushes, s.Duplicates,
			now.Sub(s.LastSeen).Truncate(time.Millisecond), state)
	}
	if len(srcs) == 0 {
		fmt.Fprintln(w, "(no sources)")
	}
}

// WriteDashboard renders the live fleet view: source ledger, sweep progress
// (units done/failed, worker occupancy), per-experiment miss rates, and
// per-core busy/migration/idle fractions per source.
func (c *Collector) WriteDashboard(w io.Writer) {
	srcs := c.Sources()
	merged := c.Merged()
	fmt.Fprintf(w, "rtopex obscollect — %d source(s), %d evicted, up %s\n\n",
		len(srcs), c.Evicted(), c.now().Sub(c.started).Truncate(time.Second))
	c.writeSources(w)

	// Fleet-wide sweep progress from the merged counters (exact sums).
	if total, ok := merged.CounterValue("rtopex_sweep_units_total"); ok {
		done, _ := merged.CounterValue("rtopex_sweep_units_done_total")
		failed, _ := merged.CounterValue("rtopex_sweep_units_failed_total")
		reused, _ := merged.CounterValue("rtopex_sweep_units_reused_total")
		fmt.Fprintf(w, "\nsweep: %d/%d units done, %d failed, %d reused\n", done, total, failed, reused)
	}
	// Occupancy sums per-source gauges: a cross-source gauge merge
	// overwrites, so the fleet totals come from the envelopes directly.
	var busy, workers float64
	var haveOcc bool
	c.mu.Lock()
	for _, st := range c.src {
		if st.ws == nil {
			continue
		}
		if v, ok := st.ws.Snapshot.GaugeValue("rtopex_sweep_workers"); ok {
			workers += v
			haveOcc = true
		}
		if v, ok := st.ws.Snapshot.GaugeValue("rtopex_sweep_workers_busy"); ok {
			busy += v
		}
	}
	c.mu.Unlock()
	if haveOcc {
		fmt.Fprintf(w, "occupancy: %.0f/%.0f workers busy across the fleet\n", busy, workers)
	}

	// Per-experiment miss rates from the merged gauges.
	var missLines []string
	for _, g := range merged.Gauges {
		if g.Name != "rtopex_experiment_miss_rate" {
			continue
		}
		missLines = append(missLines, fmt.Sprintf("  %-40s %.4g", canonicalLabels(g.Labels), g.Value))
	}
	if len(missLines) > 0 {
		fmt.Fprintf(w, "\nper-experiment miss rate:\n%s\n", strings.Join(missLines, "\n"))
	}

	// Per-core utilization is per source: core ids collide across machines,
	// so the fractions render under their source rather than merged.
	for _, s := range srcs {
		lines := coreLines(c.sourceSnapshot(s.Source.ID))
		if len(lines) > 0 {
			fmt.Fprintf(w, "\nper-core utilization (%s):\n%s\n", s.Source.ID, strings.Join(lines, "\n"))
		}
	}

	// History plane, when attached: merged-timeline sparklines plus
	// objective status and live alerts.
	c.mu.Lock()
	h := c.history
	c.mu.Unlock()
	if h != nil {
		h.writeHistory(w)
	}
}

func (c *Collector) sourceSnapshot(id string) *Snapshot {
	c.mu.Lock()
	defer c.mu.Unlock()
	if st, ok := c.src[id]; ok && st.ws != nil {
		return st.ws.Snapshot
	}
	return nil
}

// coreLines extracts the accountant's per-core fraction gauges from one
// snapshot as "core N: busy/mig/idle" lines, sorted by core.
func coreLines(s *Snapshot) []string {
	if s == nil {
		return nil
	}
	type frac struct{ busy, mig, idle float64 }
	cores := map[string]*frac{}
	get := func(core string) *frac {
		f, ok := cores[core]
		if !ok {
			f = &frac{}
			cores[core] = f
		}
		return f
	}
	for _, g := range s.Gauges {
		var core string
		for _, l := range g.Labels {
			if l.Key == "core" {
				core = l.Value
			}
		}
		if core == "" {
			continue
		}
		switch g.Name {
		case "rtopex_core_busy_fraction":
			get(core).busy = g.Value
		case "rtopex_core_migration_fraction":
			get(core).mig = g.Value
		case "rtopex_core_idle_fraction":
			get(core).idle = g.Value
		}
	}
	ids := make([]string, 0, len(cores))
	for id := range cores {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool {
		if len(ids[i]) != len(ids[j]) { // numeric-ish: shorter decimal first
			return len(ids[i]) < len(ids[j])
		}
		return ids[i] < ids[j]
	})
	out := make([]string, 0, len(ids))
	for _, id := range ids {
		f := cores[id]
		out = append(out, fmt.Sprintf("  core %3s: busy %.3f  mig %.3f  idle %.3f", id, f.busy, f.mig, f.idle))
	}
	return out
}
