package obs

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"time"
)

// FleetHistory gives a Collector a time dimension: every tick scrapes the
// merged fleet snapshot into one TSDB and each live source's envelope into
// its own, so a sweep fleet gets a single merged timeline *and* per-source
// timelines behind the same /api surface (?source=<id> selects one; the
// default is the merge). The SLO engine evaluates over the merged
// timeline only — objectives are fleet-level contracts, and per-source
// burn attribution falls out of the per-source history.
type FleetHistory struct {
	col    *Collector
	merged *TSDB
	slo    *SLOEngine
	now    func() time.Time

	mu        sync.Mutex
	perSource map[string]*TSDB

	done     chan struct{}
	stopOnce sync.Once
}

// FleetHistoryConfig wires a FleetHistory.
type FleetHistoryConfig struct {
	// TSDB bounds every timeline (merged and per-source alike).
	TSDB TSDBConfig
	// Objectives, when non-empty, attach an SLO engine to the merged
	// timeline.
	Objectives []Objective
	// Dossiers, when non-nil, is the alert cross-link source (typically
	// the daemon's DossierStore).
	Dossiers DossierSource
	// Now substitutes the clock (tests); nil means time.Now.
	Now func() time.Time
}

// NewFleetHistory builds the history plane over col without starting the
// scrape loop (deterministic use: call Tick yourself).
func NewFleetHistory(col *Collector, cfg FleetHistoryConfig) *FleetHistory {
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	f := &FleetHistory{
		col:       col,
		merged:    NewTSDB(cfg.TSDB),
		now:       cfg.Now,
		perSource: map[string]*TSDB{},
		done:      make(chan struct{}),
	}
	if len(cfg.Objectives) > 0 {
		f.slo = NewSLOEngine(f.merged, cfg.Objectives...)
		if cfg.Dossiers != nil {
			f.slo.SetDossierSource(cfg.Dossiers)
		}
	}
	return f
}

// SLO returns the merged timeline's engine (nil without objectives).
func (f *FleetHistory) SLO() *SLOEngine { return f.slo }

// Merged returns the merged-fleet timeline.
func (f *FleetHistory) Merged() *TSDB { return f.merged }

// Tick performs one scrape-and-evaluate step: merged snapshot into the
// merged TSDB, each live source's envelope into its timeline, dropped
// timelines for sources the collector no longer tracks, then one SLO
// evaluation.
func (f *FleetHistory) Tick() {
	now := f.now()
	f.merged.Observe(now, f.col.Merged())
	live := map[string]bool{}
	for _, s := range f.col.Sources() {
		id := s.Source.ID
		live[id] = true
		snap := f.col.sourceSnapshot(id)
		if snap == nil {
			continue
		}
		f.mu.Lock()
		db, ok := f.perSource[id]
		if !ok {
			db = NewTSDB(f.mergedCfg())
			f.perSource[id] = db
		}
		f.mu.Unlock()
		db.Observe(now, snap)
	}
	// A source evicted from the collector loses its timeline too: the
	// per-source map stays bounded by the collector's own source bound.
	f.mu.Lock()
	for id := range f.perSource {
		if !live[id] {
			delete(f.perSource, id)
		}
	}
	f.mu.Unlock()
	if f.slo != nil {
		f.slo.Evaluate(now)
	}
}

func (f *FleetHistory) mergedCfg() TSDBConfig { return f.merged.cfg }

// Resolve implements HistoryResolver: "" (or "fleet") selects the merged
// timeline with the SLO engine attached; a source ID selects that source's
// bare timeline.
func (f *FleetHistory) Resolve(source string) (HistoryView, bool) {
	if source == "" || source == "fleet" {
		return HistoryView{DB: f.merged, SLO: f.slo}, true
	}
	f.mu.Lock()
	db, ok := f.perSource[source]
	f.mu.Unlock()
	if !ok {
		return HistoryView{}, false
	}
	return HistoryView{DB: db}, true
}

// SourceIDs lists the sources currently holding a timeline, sorted.
func (f *FleetHistory) SourceIDs() []string {
	f.mu.Lock()
	defer f.mu.Unlock()
	ids := make([]string, 0, len(f.perSource))
	for id := range f.perSource {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// Start launches the scrape loop at the TSDB step. Call Stop to halt it.
func (f *FleetHistory) Start() {
	f.Tick()
	go func() {
		t := time.NewTicker(f.merged.Step())
		defer t.Stop()
		for {
			select {
			case <-f.done:
				return
			case <-t.C:
				f.Tick()
			}
		}
	}()
}

// Stop halts a started scrape loop (safe to call repeatedly).
func (f *FleetHistory) Stop() {
	f.stopOnce.Do(func() { close(f.done) })
}

// AttachHistory links the history plane into the collector's text
// dashboard: WriteDashboard gains a sparkline section over the merged
// timeline plus the SLO/alert summary.
func (c *Collector) AttachHistory(f *FleetHistory) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.history = f
}

// writeHistory renders the dashboard's history section: sparklines of the
// fleet's key merged series over the recent window, then objective status
// and alert states.
func (f *FleetHistory) writeHistory(w io.Writer) {
	const width = 40
	window := 10 * time.Minute
	if r := f.merged.cfg.Retention; r < window {
		window = r
	}
	type line struct {
		name   string
		points []Point
		format string
	}
	var lines []line
	if pts := f.merged.RatioPoints(
		"rtopex_live_missed_total", "rtopex_live_subframes_total", window); len(pts) > 0 {
		lines = append(lines, line{"miss rate", pts, "%.4g"})
	}
	for _, id := range []string{
		"rtopex_live_subframes_total",
		"rtopex_sweep_units_done_total",
		"rtopex_fleet_units_done_total",
	} {
		if rate, ok := f.merged.Rate(id, window); ok {
			lines = append(lines, line{id + "/s", ratePoints(f.merged, id, window), fmt.Sprintf("%%.3g (now %.3g/s)", rate)})
		}
	}
	for _, id := range []string{"rtopex_sweep_workers_busy", "rtopex_go_goroutines"} {
		if pts := f.merged.Points(id, window); len(pts) > 0 {
			lines = append(lines, line{id, pts, "%.3g"})
		}
	}
	if len(lines) > 0 {
		fmt.Fprintf(w, "\nhistory (last %s, step %s):\n", window, f.merged.Step())
		for _, l := range lines {
			last := 0.0
			if n := len(l.points); n > 0 {
				last = l.points[n-1].V
			}
			fmt.Fprintf(w, "  %-28s %s "+l.format+"\n", l.name, Sparkline(l.points, width), last)
		}
	}
	if f.slo == nil {
		return
	}
	fmt.Fprintf(w, "\nslo:\n")
	for _, st := range f.slo.Status() {
		fmt.Fprintf(w, "  %-20s target %.4g over %s  ratio %.4g  burn fast %.2f slow %.2f  budget %.0f%%  [%s]\n",
			st.Objective.Name, st.Objective.Target, time.Duration(st.WindowMS)*time.Millisecond,
			st.ErrorRatio, st.FastBurn, st.SlowBurn, st.BudgetUsed*100, st.State)
	}
	for _, a := range f.slo.Alerts() {
		if a.State == AlertInactive {
			continue
		}
		fmt.Fprintf(w, "  alert %-14s %s since %s, %d dossier(s)\n",
			a.Objective, a.State, time.UnixMilli(a.SinceMS).UTC().Format(time.TimeOnly), a.DossierCount)
	}
}

// ratePoints renders a counter's per-step rate as points (sparkline form
// of Rate).
func ratePoints(db *TSDB, id string, window time.Duration) []Point {
	raw := db.Points(id, window)
	if len(raw) < 2 {
		return nil
	}
	out := make([]Point, 0, len(raw)-1)
	for i := 1; i < len(raw); i++ {
		dt := float64(raw[i].T-raw[i-1].T) / 1e3
		if dt <= 0 {
			continue
		}
		dv := raw[i].V - raw[i-1].V
		if dv < 0 {
			dv = raw[i].V
		}
		out = append(out, Point{T: raw[i].T, V: dv / dt})
	}
	return out
}
