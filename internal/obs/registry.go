// Package obs is the live observability plane: a concurrency-safe,
// mergeable metrics registry (counters, gauges, log-linear histograms with
// bounded relative error), a per-core utilization accountant driven by the
// run-level trace events, Prometheus text-format exposition, and an opt-in
// HTTP endpoint bundling /metrics with expvar and net/http/pprof.
//
// Mergeability is the design center. The sweep engine runs shards on a
// worker pool (and, per the ROADMAP, eventually on many machines); each
// shard can fill its own registry and the shard registries merge exactly:
// counters and histogram buckets sum, so the merged histogram is
// bucket-for-bucket identical to one filled serially with the same samples
// — the sweep's parallel-equals-serial guarantee extended from means to
// quantiles. Snapshots are the serialized form: deterministic JSON suitable
// for embedding in sweep artifact records and diffing in the baseline gate.
package obs

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Label is one key=value dimension of a metric series.
type Label struct {
	Key   string `json:"k"`
	Value string `json:"v"`
}

// L is shorthand for constructing a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// Counter is a monotonically nondecreasing integer metric.
type Counter struct{ v atomic.Int64 }

// Inc adds 1.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n; negative deltas panic (counters only go up — use a Gauge).
func (c *Counter) Add(n int64) {
	if n < 0 {
		panic("obs: negative counter delta")
	}
	c.v.Add(n)
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a settable float metric. The zero Gauge reads as 0 and "unset";
// merges only overwrite with gauges that have been set.
type Gauge struct {
	bits atomic.Uint64
	set  atomic.Bool
}

// Set stores v.
func (g *Gauge) Set(v float64) {
	g.bits.Store(floatBits(v))
	g.set.Store(true)
}

// Add increments the gauge by d (atomically).
func (g *Gauge) Add(d float64) {
	for {
		old := g.bits.Load()
		if g.bits.CompareAndSwap(old, floatBits(bitsFloat(old)+d)) {
			g.set.Store(true)
			return
		}
	}
}

// Value returns the current value (0 when never set).
func (g *Gauge) Value() float64 { return bitsFloat(g.bits.Load()) }

// IsSet reports whether the gauge was ever written.
func (g *Gauge) IsSet() bool { return g.set.Load() }

// kind discriminates the metric families a registry holds.
type kind uint8

const (
	counterKind kind = iota
	gaugeKind
	histogramKind
)

func (k kind) String() string {
	switch k {
	case counterKind:
		return "counter"
	case gaugeKind:
		return "gauge"
	case histogramKind:
		return "histogram"
	}
	return "unknown"
}

// series is one labeled instance of a metric family.
type series struct {
	labels []Label
	c      *Counter
	g      *Gauge
	h      *Histogram
}

// family is all series sharing one metric name.
type family struct {
	name   string
	help   string
	k      kind
	series map[string]*series // by canonical label string
}

// Registry is a concurrency-safe collection of metric families. The zero
// value is not usable; construct with NewRegistry. Counter/Gauge/Histogram
// return get-or-create handles, so hot paths can cache them and bypass the
// registry lock entirely.
type Registry struct {
	mu   sync.Mutex
	fams map[string]*family
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry { return &Registry{fams: map[string]*family{}} }

// SetHelp attaches Prometheus HELP text to a metric family (created lazily
// as needed; the kind is fixed by the first typed accessor).
func (r *Registry) SetHelp(name, help string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.fams[name]
	if !ok {
		f = &family{name: name, series: map[string]*series{}}
		r.fams[name] = f
	}
	f.help = help
}

// Counter returns (creating if needed) the counter series name{labels}.
// Using a name already registered under a different kind panics: it is a
// programming error that would corrupt the exposition.
func (r *Registry) Counter(name string, labels ...Label) *Counter {
	s := r.getSeries(name, counterKind, labels)
	return s.c
}

// Gauge returns (creating if needed) the gauge series name{labels}.
func (r *Registry) Gauge(name string, labels ...Label) *Gauge {
	s := r.getSeries(name, gaugeKind, labels)
	return s.g
}

// Histogram returns (creating if needed) the histogram series name{labels}.
func (r *Registry) Histogram(name string, labels ...Label) *Histogram {
	s := r.getSeries(name, histogramKind, labels)
	return s.h
}

func (r *Registry) getSeries(name string, k kind, labels []Label) *series {
	key := canonicalLabels(labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.fams[name]
	if !ok {
		f = &family{name: name, k: k, series: map[string]*series{}}
		r.fams[name] = f
	} else if len(f.series) > 0 && f.k != k {
		panic(fmt.Sprintf("obs: metric %q is a %s, requested as %s", name, f.k, k))
	} else if len(f.series) == 0 {
		f.k = k
	}
	s, ok := f.series[key]
	if !ok {
		s = &series{labels: sortedLabels(labels)}
		switch k {
		case counterKind:
			s.c = &Counter{}
		case gaugeKind:
			s.g = &Gauge{}
		case histogramKind:
			s.h = NewHistogram()
		}
		f.series[key] = s
	}
	return s
}

// sortedLabels returns a copy of labels sorted by key (ties by value).
func sortedLabels(labels []Label) []Label {
	out := append([]Label(nil), labels...)
	sort.Slice(out, func(i, j int) bool {
		if out[i].Key != out[j].Key {
			return out[i].Key < out[j].Key
		}
		return out[i].Value < out[j].Value
	})
	return out
}

// canonicalLabels renders labels as the canonical `k="v",…` string (sorted
// by key), the series identity within a family.
func canonicalLabels(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	ls := sortedLabels(labels)
	var b strings.Builder
	for i, l := range ls {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(l.Value))
		b.WriteByte('"')
	}
	return b.String()
}

// escapeLabelValue applies the Prometheus text-format escaping rules.
func escapeLabelValue(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	var b strings.Builder
	for _, c := range v {
		switch c {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(c)
		}
	}
	return b.String()
}

// SeriesID renders the canonical identity of one series: name alone, or
// name{k="v",…} with labels sorted by key.
func SeriesID(name string, labels []Label) string {
	ls := canonicalLabels(labels)
	if ls == "" {
		return name
	}
	return name + "{" + ls + "}"
}

// Merge folds another registry into r: counters and histogram buckets sum,
// set gauges overwrite. Equivalent to r.MergeSnapshot(other.Snapshot()).
func (r *Registry) Merge(other *Registry) { r.MergeSnapshot(other.Snapshot()) }
