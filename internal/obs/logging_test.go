package obs

import (
	"bytes"
	"encoding/json"
	"flag"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestLogFlags(t *testing.T) {
	fs := flag.NewFlagSet("t", flag.ContinueOnError)
	c := LogFlags(fs)
	if err := fs.Parse([]string{"-log-format", "json", "-log-level", "debug"}); err != nil {
		t.Fatal(err)
	}
	if c.Format != "json" || c.Level != "debug" {
		t.Fatalf("parsed config: %+v", c)
	}
}

func TestLoggerTextDefault(t *testing.T) {
	var buf bytes.Buffer
	l, err := (&LogConfig{}).Logger("sweepd", &buf)
	if err != nil {
		t.Fatal(err)
	}
	logf := Printf(l)
	logf("sweep resolved: %d/%d done", 12, 12)
	line := buf.String()
	// Scripts grep daemon logs for these substrings; the text handler must
	// keep the formatted message findable.
	if !strings.Contains(line, "sweep resolved: 12/12 done") {
		t.Fatalf("message not greppable in %q", line)
	}
	if !strings.Contains(line, "component=sweepd") {
		t.Fatalf("missing component attribute in %q", line)
	}
	// Debug is below the default info level.
	buf.Reset()
	l.Debug("hidden")
	if buf.Len() != 0 {
		t.Fatalf("debug record emitted at info level: %q", buf.String())
	}
}

func TestLoggerJSON(t *testing.T) {
	var buf bytes.Buffer
	l, err := (&LogConfig{Format: "json", Level: "warn"}).Logger("obscollect", &buf)
	if err != nil {
		t.Fatal(err)
	}
	l.Info("hidden")
	l.Warn("shown")
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 1 {
		t.Fatalf("want exactly the warn record, got %q", buf.String())
	}
	var rec map[string]any
	if err := json.Unmarshal([]byte(lines[0]), &rec); err != nil {
		t.Fatal(err)
	}
	if rec["msg"] != "shown" || rec["component"] != "obscollect" || rec["level"] != "WARN" {
		t.Fatalf("unexpected record: %v", rec)
	}
}

func TestLoggerRejectsUnknown(t *testing.T) {
	if _, err := (&LogConfig{Format: "xml"}).Logger("x", nil); err == nil {
		t.Fatal("unknown format accepted")
	}
	if _, err := (&LogConfig{Level: "loud"}).Logger("x", nil); err == nil {
		t.Fatal("unknown level accepted")
	}
}

func TestPrintfNil(t *testing.T) {
	if Printf(nil) != nil {
		t.Fatal("Printf(nil) should be nil so daemons can pass it straight to Logf fields")
	}
}

func TestMountHealth(t *testing.T) {
	ready := false
	mux := http.NewServeMux()
	MountHealth(mux, func() error {
		if !ready {
			return errNotReady
		}
		return nil
	})
	srv := httptest.NewServer(mux)
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/healthz: HTTP %d", resp.StatusCode)
	}

	resp, err = http.Get(srv.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("/readyz before ready: HTTP %d, want 503", resp.StatusCode)
	}

	ready = true
	resp, err = http.Get(srv.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/readyz after ready: HTTP %d", resp.StatusCode)
	}
}

var errNotReady = errNotReadyT{}

type errNotReadyT struct{}

func (errNotReadyT) Error() string { return "lease ledger still loading" }
