package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func dossierDoc(seq int, trigger string) []byte {
	return []byte(fmt.Sprintf(`{"flight_version":1,"seq":%d,"label":"t","trigger":%q,"window":[]}`, seq, trigger))
}

func TestDossierStoreIngest(t *testing.T) {
	s := NewDossierStore(DossierStoreConfig{})
	if err := s.Ingest("w1", dossierDoc(1, "deadline-miss")); err != nil {
		t.Fatal(err)
	}
	if s.Len() != 1 {
		t.Fatalf("Len = %d, want 1", s.Len())
	}
	metas := s.List()
	if metas[0].Source != "w1" || metas[0].Trigger != "deadline-miss" || metas[0].Seq != 1 {
		t.Fatalf("unexpected meta: %+v", metas[0])
	}
	raw, ok := s.Get(metas[0].ID)
	if !ok || !bytes.Equal(raw, dossierDoc(1, "deadline-miss")) {
		t.Fatal("stored document altered")
	}

	// Transport validation: non-JSON, non-object, missing flight_version.
	for _, bad := range [][]byte{
		[]byte("not json"),
		[]byte(`[1,2]`),
		[]byte(`{"seq":1}`),
		[]byte(`{"flight_version":0}`),
	} {
		if err := s.Ingest("w1", bad); err == nil {
			t.Fatalf("ingested invalid dossier %q", bad)
		}
	}
	if s.Len() != 1 {
		t.Fatalf("invalid ingests changed the store (Len %d)", s.Len())
	}
}

func TestDossierStoreCaps(t *testing.T) {
	s := NewDossierStore(DossierStoreConfig{MaxDossiers: 3})
	for i := 1; i <= 5; i++ {
		if err := s.Ingest("w", dossierDoc(i, "drop")); err != nil {
			t.Fatal(err)
		}
	}
	if s.Len() != 3 || s.Evicted() != 2 {
		t.Fatalf("Len/Evicted = %d/%d, want 3/2", s.Len(), s.Evicted())
	}
	metas := s.List()
	if metas[0].Seq != 3 {
		t.Fatalf("oldest surviving seq = %d, want 3", metas[0].Seq)
	}

	// Oversized single document.
	big := NewDossierStore(DossierStoreConfig{MaxItemBytes: 16})
	if err := big.Ingest("w", dossierDoc(1, "drop")); err == nil {
		t.Fatal("oversized dossier accepted")
	}
}

func TestDossierStoreHandler(t *testing.T) {
	s := NewDossierStore(DossierStoreConfig{})
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	req, _ := http.NewRequest(http.MethodPost, srv.URL+DossierPushPath, bytes.NewReader(dossierDoc(9, "overrun")))
	req.Header.Set(DossierSourceHeader, "worker-9")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("push: HTTP %d", resp.StatusCode)
	}

	// GET on the push path is rejected.
	resp, err = http.Get(srv.URL + DossierPushPath)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET push: HTTP %d, want 405", resp.StatusCode)
	}

	resp, err = http.Get(srv.URL + "/dossiers")
	if err != nil {
		t.Fatal(err)
	}
	var metas []DossierMeta
	if err := json.NewDecoder(resp.Body).Decode(&metas); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(metas) != 1 || metas[0].Source != "worker-9" || metas[0].Trigger != "overrun" {
		t.Fatalf("unexpected listing: %+v", metas)
	}

	resp, err = http.Get(fmt.Sprintf("%s/dossiers/%d", srv.URL, metas[0].ID))
	if err != nil {
		t.Fatal(err)
	}
	var doc map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if doc["trigger"] != "overrun" {
		t.Fatalf("unexpected document: %v", doc)
	}

	resp, _ = http.Get(srv.URL + "/dossiers/404")
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("missing id: HTTP %d, want 404", resp.StatusCode)
	}
}

func TestDossierStoreWriteDir(t *testing.T) {
	s := NewDossierStore(DossierStoreConfig{})
	if err := s.Ingest("host-1:worker/2", dossierDoc(1, "deadline-miss")); err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if err := s.WriteDir(dir); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("wrote %d files, want 1", len(entries))
	}
	name := entries[0].Name()
	if !strings.HasPrefix(name, "dossier-000001-") || strings.ContainsAny(name, ":/") {
		t.Fatalf("unsanitized archive name %q", name)
	}
	raw, err := os.ReadFile(filepath.Join(dir, name))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(raw, dossierDoc(1, "deadline-miss")) {
		t.Fatal("archived document altered")
	}
}
