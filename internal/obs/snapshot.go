package obs

import (
	"fmt"
	"io"
	"sort"
	"strconv"
)

// CounterValue is one counter series in a snapshot.
type CounterValue struct {
	Name   string  `json:"name"`
	Labels []Label `json:"labels,omitempty"`
	Value  int64   `json:"value"`
}

// GaugeValue is one gauge series in a snapshot.
type GaugeValue struct {
	Name   string  `json:"name"`
	Labels []Label `json:"labels,omitempty"`
	Value  float64 `json:"value"`
}

// HistogramSeries is one histogram series in a snapshot.
type HistogramSeries struct {
	Name   string         `json:"name"`
	Labels []Label        `json:"labels,omitempty"`
	Value  HistogramValue `json:"value"`
}

// Snapshot is the serializable state of a registry at one instant. Series
// are sorted by canonical id, buckets by index, and Help keys by name (Go
// marshals map keys sorted), so identical registry states yield
// byte-identical JSON — the property the sweep's artifact determinism
// guarantee is stated over.
type Snapshot struct {
	Counters   []CounterValue    `json:"counters,omitempty"`
	Gauges     []GaugeValue      `json:"gauges,omitempty"`
	Histograms []HistogramSeries `json:"histograms,omitempty"`
	// Help carries the families' HELP text (name → help) so a snapshot
	// merged on another machine renders the same /metrics exposition as the
	// registry it came from.
	Help map[string]string `json:"help,omitempty"`
}

// Snapshot captures the registry's current state. Unset gauges are skipped.
func (r *Registry) Snapshot() *Snapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	snap := &Snapshot{}
	for _, f := range r.fams {
		if f.help != "" {
			if snap.Help == nil {
				snap.Help = map[string]string{}
			}
			snap.Help[f.name] = f.help
		}
		for _, s := range f.series {
			switch f.k {
			case counterKind:
				snap.Counters = append(snap.Counters, CounterValue{f.name, s.labels, s.c.Value()})
			case gaugeKind:
				if s.g.IsSet() {
					snap.Gauges = append(snap.Gauges, GaugeValue{f.name, s.labels, s.g.Value()})
				}
			case histogramKind:
				snap.Histograms = append(snap.Histograms, HistogramSeries{f.name, s.labels, s.h.Value()})
			}
		}
	}
	sort.Slice(snap.Counters, func(i, j int) bool {
		return SeriesID(snap.Counters[i].Name, snap.Counters[i].Labels) < SeriesID(snap.Counters[j].Name, snap.Counters[j].Labels)
	})
	sort.Slice(snap.Gauges, func(i, j int) bool {
		return SeriesID(snap.Gauges[i].Name, snap.Gauges[i].Labels) < SeriesID(snap.Gauges[j].Name, snap.Gauges[j].Labels)
	})
	sort.Slice(snap.Histograms, func(i, j int) bool {
		return SeriesID(snap.Histograms[i].Name, snap.Histograms[i].Labels) < SeriesID(snap.Histograms[j].Name, snap.Histograms[j].Labels)
	})
	return snap
}

// MergeSnapshot folds a snapshot into the registry: counters and histogram
// buckets add, gauges overwrite. This is the cross-shard (and cross-machine)
// aggregation path: merging per-shard snapshots produces exactly the
// registry a serial run over all shards would have built.
func (r *Registry) MergeSnapshot(s *Snapshot) {
	if s == nil {
		return
	}
	for name, help := range s.Help {
		r.SetHelp(name, help)
	}
	for _, c := range s.Counters {
		r.Counter(c.Name, c.Labels...).Add(c.Value)
	}
	for _, g := range s.Gauges {
		r.Gauge(g.Name, g.Labels...).Set(g.Value)
	}
	for _, h := range s.Histograms {
		r.Histogram(h.Name, h.Labels...).MergeValue(h.Value)
	}
}

// Merge folds another snapshot into s (without a registry): counters and
// histogram buckets add, gauges overwrite.
func (s *Snapshot) Merge(other *Snapshot) *Snapshot {
	r := NewRegistry()
	r.MergeSnapshot(s)
	r.MergeSnapshot(other)
	return r.Snapshot()
}

// CounterValue looks up one counter series by identity (false when absent).
func (s *Snapshot) CounterValue(name string, labels ...Label) (int64, bool) {
	id := SeriesID(name, labels)
	for _, c := range s.Counters {
		if SeriesID(c.Name, c.Labels) == id {
			return c.Value, true
		}
	}
	return 0, false
}

// GaugeValue looks up one gauge series by identity (false when absent).
func (s *Snapshot) GaugeValue(name string, labels ...Label) (float64, bool) {
	id := SeriesID(name, labels)
	for _, g := range s.Gauges {
		if SeriesID(g.Name, g.Labels) == id {
			return g.Value, true
		}
	}
	return 0, false
}

// WriteText renders the snapshot as aligned human-readable lines: counters
// and gauges one per line, histograms as count/mean/quantile summaries.
// The output is deterministic (series sorted by id).
func (s *Snapshot) WriteText(w io.Writer) error {
	for _, c := range s.Counters {
		if _, err := fmt.Fprintf(w, "%-52s %d\n", SeriesID(c.Name, c.Labels), c.Value); err != nil {
			return err
		}
	}
	for _, g := range s.Gauges {
		if _, err := fmt.Fprintf(w, "%-52s %s\n", SeriesID(g.Name, g.Labels), formatFloat(g.Value)); err != nil {
			return err
		}
	}
	for _, h := range s.Histograms {
		v := h.Value
		if _, err := fmt.Fprintf(w, "%-52s n=%d mean=%s p50=%s p99=%s max=%s\n",
			SeriesID(h.Name, h.Labels), v.Count, formatFloat(v.Mean()),
			formatFloat(v.Quantile(0.5)), formatFloat(v.Quantile(0.99)), formatFloat(v.Max)); err != nil {
			return err
		}
	}
	return nil
}

// formatFloat renders a float with the shortest round-trip representation,
// the same convention the Prometheus writer uses.
func formatFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
