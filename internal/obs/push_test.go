package obs

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func testPusher(t *testing.T, url string, retries int) *Pusher {
	t.Helper()
	p, err := NewPusher(PusherConfig{
		Addr:    url,
		Source:  Source{ID: "test-src"},
		Retries: retries,
		Backoff: time.Millisecond,
		Timeout: 2 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// TestPusherDeliversToCollector: pushes land, seqs increase, final marks
// the source done.
func TestPusherDeliversToCollector(t *testing.T) {
	col := NewCollector(CollectorConfig{})
	srv := httptest.NewServer(col.Handler())
	defer srv.Close()

	reg := NewRegistry()
	c := reg.Counter("work_total")
	p := testPusher(t, srv.URL, 1)

	c.Add(3)
	if err := p.Push(reg); err != nil {
		t.Fatal(err)
	}
	c.Add(4)
	if err := p.PushFinal(reg); err != nil {
		t.Fatal(err)
	}

	if v, ok := col.Merged().CounterValue("work_total"); !ok || v != 7 {
		t.Fatalf("merged work_total = %d (ok=%v), want 7", v, ok)
	}
	srcs := col.Sources()
	if len(srcs) != 1 || srcs[0].Seq != 2 || !srcs[0].Final {
		t.Fatalf("sources = %+v, want one final source at seq 2", srcs)
	}
}

// TestPusherAuth: a pusher with the collector's token gets through the
// BearerAuth gate; one without is rejected permanently (401, no retries).
func TestPusherAuth(t *testing.T) {
	col := NewCollector(CollectorConfig{})
	srv := httptest.NewServer(BearerAuth("s3cret", col.Handler()))
	defer srv.Close()

	reg := NewRegistry()
	reg.Counter("work_total").Add(5)

	good, err := NewPusher(PusherConfig{
		Addr: srv.URL, Source: Source{ID: "good"}, AuthToken: "s3cret",
		Retries: 1, Backoff: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := good.Push(reg); err != nil {
		t.Fatal(err)
	}
	if v, ok := col.Merged().CounterValue("work_total"); !ok || v != 5 {
		t.Fatalf("merged work_total = %d (ok=%v), want 5", v, ok)
	}

	bad, err := NewPusher(PusherConfig{
		Addr: srv.URL, Source: Source{ID: "bad"}, AuthToken: "wrong",
		Retries: 3, Backoff: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	err = bad.Push(reg)
	if err == nil || !strings.Contains(err.Error(), "rejected") {
		t.Fatalf("wrong token pushed: %v", err)
	}
	if srcs := col.Sources(); len(srcs) != 1 {
		t.Fatalf("unauthenticated push reached the collector: %+v", srcs)
	}
}

// TestPusherRetriesOn5xx: transient server errors are retried with backoff
// until one attempt lands.
func TestPusherRetriesOn5xx(t *testing.T) {
	var attempts atomic.Int64
	col := NewCollector(CollectorConfig{})
	inner := col.Handler()
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if attempts.Add(1) <= 2 {
			http.Error(w, "try later", http.StatusServiceUnavailable)
			return
		}
		inner.ServeHTTP(w, r)
	}))
	defer srv.Close()

	reg := NewRegistry()
	reg.Counter("x_total").Inc()
	if err := testPusher(t, srv.URL, 3).Push(reg); err != nil {
		t.Fatalf("push should have survived two 503s: %v", err)
	}
	if got := attempts.Load(); got != 3 {
		t.Fatalf("attempts = %d, want 3", got)
	}
	if v, ok := col.Merged().CounterValue("x_total"); !ok || v != 1 {
		t.Fatalf("merged x_total = %d (ok=%v), want 1", v, ok)
	}
}

// TestPusherGivesUpAfterRetries: the retry budget is bounded.
func TestPusherGivesUpAfterRetries(t *testing.T) {
	var attempts atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		attempts.Add(1)
		http.Error(w, "down", http.StatusInternalServerError)
	}))
	defer srv.Close()
	err := testPusher(t, srv.URL, 2).Push(NewRegistry())
	if err == nil || !strings.Contains(err.Error(), "after 3 attempt(s)") {
		t.Fatalf("err = %v, want failure after 3 attempts", err)
	}
	if got := attempts.Load(); got != 3 {
		t.Fatalf("attempts = %d, want 3", got)
	}
}

// TestPusherNoRetryOn4xx: a rejected envelope is not resent.
func TestPusherNoRetryOn4xx(t *testing.T) {
	var attempts atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		attempts.Add(1)
		http.Error(w, "bad envelope", http.StatusBadRequest)
	}))
	defer srv.Close()
	err := testPusher(t, srv.URL, 5).Push(NewRegistry())
	if err == nil || !strings.Contains(err.Error(), "rejected") {
		t.Fatalf("err = %v, want rejection", err)
	}
	if got := attempts.Load(); got != 1 {
		t.Fatalf("attempts = %d, want 1 (no retry on 4xx)", got)
	}
}

// TestPusherRetryIdempotence: a retry after a lost response re-sends the
// same seq, which the collector deduplicates — total counts stay exact.
func TestPusherRetryIdempotence(t *testing.T) {
	var attempts atomic.Int64
	col := NewCollector(CollectorConfig{})
	inner := col.Handler()
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		// First attempt: the collector ingests, but the response is lost
		// (emulated by a 500 AFTER ingest).
		if attempts.Add(1) == 1 {
			rec := httptest.NewRecorder()
			inner.ServeHTTP(rec, r)
			http.Error(w, "response lost", http.StatusInternalServerError)
			return
		}
		inner.ServeHTTP(w, r)
	}))
	defer srv.Close()

	reg := NewRegistry()
	reg.Counter("exact_total").Add(11)
	if err := testPusher(t, srv.URL, 2).Push(reg); err != nil {
		t.Fatal(err)
	}
	if v, _ := col.Merged().CounterValue("exact_total"); v != 11 {
		t.Fatalf("merged exact_total = %d, want 11 (duplicate push double-counted?)", v)
	}
	srcs := col.Sources()
	if len(srcs) != 1 || srcs[0].Duplicates != 1 {
		t.Fatalf("sources = %+v, want 1 duplicate recorded", srcs)
	}
}

// TestPusherConcurrentPushesOrdered: concurrent pushes serialize, so the
// collector's final state is the registry's final state.
func TestPusherConcurrentPushesOrdered(t *testing.T) {
	col := NewCollector(CollectorConfig{})
	srv := httptest.NewServer(col.Handler())
	defer srv.Close()

	reg := NewRegistry()
	c := reg.Counter("n_total")
	p := testPusher(t, srv.URL, 1)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c.Inc()
			if err := p.Push(reg); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
	if err := p.PushFinal(reg); err != nil {
		t.Fatal(err)
	}
	if v, _ := col.Merged().CounterValue("n_total"); v != 8 {
		t.Fatalf("merged n_total = %d, want 8", v)
	}
}

// TestStartPeriodic: the background loop pushes on its interval and stop
// flushes a final snapshot.
func TestStartPeriodic(t *testing.T) {
	col := NewCollector(CollectorConfig{})
	srv := httptest.NewServer(col.Handler())
	defer srv.Close()

	reg := NewRegistry()
	reg.Counter("beat_total").Inc()
	p := testPusher(t, srv.URL, 1)
	stop := p.StartPeriodic(reg, 10*time.Millisecond)
	deadline := time.Now().Add(5 * time.Second)
	for len(col.Sources()) == 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if err := stop(); err != nil {
		t.Fatal(err)
	}
	if err := stop(); err != nil { // idempotent
		t.Fatal(err)
	}
	srcs := col.Sources()
	if len(srcs) != 1 || !srcs[0].Final {
		t.Fatalf("sources after stop = %+v, want one final source", srcs)
	}
	if v, _ := col.Merged().CounterValue("beat_total"); v != 1 {
		t.Fatalf("beat_total = %d, want 1", v)
	}
}

// TestNilPusherIsNoOp: optional wiring must not branch at call sites.
func TestNilPusherIsNoOp(t *testing.T) {
	var p *Pusher
	if err := p.Push(NewRegistry()); err != nil {
		t.Fatal(err)
	}
	if err := p.PushFinal(nil); err != nil {
		t.Fatal(err)
	}
	if err := p.StartPeriodic(nil, time.Second)(); err != nil {
		t.Fatal(err)
	}
	if got := p.Source(); got.ID != "" {
		t.Fatalf("nil pusher source = %+v", got)
	}
}
