package obs

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// goldenRegistry builds a registry exercising every family kind, labels,
// escaping, and both set and unset gauges.
func goldenRegistry() *Registry {
	r := NewRegistry()
	r.SetHelp("rtopex_sweep_units_done_total", "Sweep units completed.")
	r.Counter("rtopex_sweep_units_done_total").Add(12)
	r.SetHelp("rtopex_miss_rate", "Per-experiment deadline miss rate.")
	r.Gauge("rtopex_miss_rate", L("experiment", "fig15"), L("column", "rt-opex")).Set(0.0125)
	r.Gauge("rtopex_miss_rate", L("experiment", "fig15"), L("column", "partitioned")).Set(0.31)
	r.Gauge("rtopex_unset") // never Set: must not be rendered
	r.SetHelp("rtopex_proc_us", "Per-subframe processing time.")
	h := r.Histogram("rtopex_proc_us", L("sched", "rt-opex"))
	for i := 1; i <= 100; i++ {
		h.Observe(float64(i * 10))
	}
	r.Counter("escaped_total", L("path", `a\b"c`+"\n")).Inc()
	return r
}

func TestWritePromGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := goldenRegistry().WriteProm(&buf); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join("testdata", "metrics.golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read golden (run with -update to regenerate): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("Prometheus rendering drifted from golden.\n--- got ---\n%s\n--- want ---\n%s", buf.Bytes(), want)
	}
}

func TestWritePromDeterministic(t *testing.T) {
	var a, b bytes.Buffer
	if err := goldenRegistry().WriteProm(&a); err != nil {
		t.Fatal(err)
	}
	if err := goldenRegistry().WriteProm(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("two renders of identical registries differ")
	}
}

func TestContentType(t *testing.T) {
	if ContentType != "text/plain; version=0.0.4; charset=utf-8" {
		t.Fatalf("ContentType = %q", ContentType)
	}
}
