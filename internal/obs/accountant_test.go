package obs

import (
	"math"
	"testing"

	"rtopex/internal/trace"
)

func ev(t float64, core int, k trace.Kind) trace.Event {
	return trace.Event{Time: t, Core: core, Event: k}
}

func TestAccountantFractionsSumToOne(t *testing.T) {
	a := NewCoreAccountant()
	// Core 0: own job 100–400, hosts a batch 500–650 (preempted).
	a.Emit(ev(0, -1, trace.EvArrive)) // core -1: ignored for accounting
	a.Emit(ev(100, 0, trace.EvStart))
	a.Emit(ev(400, 0, trace.EvFinish))
	a.Emit(ev(500, 0, trace.EvMigPlan))
	a.Emit(ev(650, 0, trace.EvMigPreempt))
	// Core 1: a drop still closes the busy interval.
	a.Emit(ev(200, 1, trace.EvStart))
	a.Emit(ev(300, 1, trace.EvDrop))

	reports := a.Reports(2, 1000)
	r0 := reports[0]
	if r0.BusyUS != 300 || r0.MigrationUS != 150 || r0.IdleUS != 550 {
		t.Fatalf("core 0: %+v", r0)
	}
	for _, r := range reports {
		if sum := r.Busy + r.Migration + r.Idle; sum != 1.0 {
			t.Errorf("core %d fractions sum to %v, want exactly 1.0", r.Core, sum)
		}
		if sum := r.BusyUS + r.MigrationUS + r.IdleUS; math.Abs(sum-1000) > 1e-9 {
			t.Errorf("core %d microseconds sum to %v, want 1000", r.Core, sum)
		}
	}
	if reports[1].BusyUS != 100 {
		t.Fatalf("core 1 busy = %v, want 100 (drop closes interval)", reports[1].BusyUS)
	}
}

func TestAccountantOpenIntervalsCloseAtWindowEnd(t *testing.T) {
	a := NewCoreAccountant()
	a.Emit(ev(100, 0, trace.EvStart)) // never finished
	r := a.Reports(1, 500)[0]
	if r.BusyUS != 400 {
		t.Fatalf("open job should be closed at window end: busy = %v, want 400", r.BusyUS)
	}
	// Reports must not mutate state: a second call with a later end extends
	// the same open interval.
	r = a.Reports(1, 600)[0]
	if r.BusyUS != 500 {
		t.Fatalf("reports mutated accountant state: busy = %v, want 500", r.BusyUS)
	}
}

func TestAccountantDefaults(t *testing.T) {
	a := NewCoreAccountant()
	a.Emit(ev(10, 2, trace.EvStart))
	a.Emit(ev(30, 2, trace.EvFinish))
	if a.End() != 30 {
		t.Fatalf("End = %v, want 30", a.End())
	}
	// cores ≤ 0 sizes to the highest core; end ≤ 0 uses the last event time.
	reports := a.Reports(0, 0)
	if len(reports) != 3 {
		t.Fatalf("len(reports) = %d, want 3", len(reports))
	}
	if reports[2].BusyUS != 20 || reports[2].Busy != 20.0/30 {
		t.Fatalf("core 2: %+v", reports[2])
	}
}

func TestAccountantFromLogSortsEvents(t *testing.T) {
	log := &trace.EventLog{Events: []trace.Event{
		ev(400, 0, trace.EvFinish), // out of order on purpose
		ev(100, 0, trace.EvStart),
	}}
	a := AccountantFromLog(log)
	if got := a.Reports(1, 400)[0].BusyUS; got != 300 {
		t.Fatalf("busy = %v, want 300 (events must be replayed time-sorted)", got)
	}
}

func TestAccountantPublish(t *testing.T) {
	a := NewCoreAccountant()
	a.Emit(ev(0, 0, trace.EvStart))
	a.Emit(ev(250, 0, trace.EvFinish))
	reg := NewRegistry()
	a.Publish(reg, 1, 1000)
	if got := reg.Gauge("rtopex_core_busy_fraction", L("core", "0")).Value(); got != 0.25 {
		t.Fatalf("published busy fraction = %v, want 0.25", got)
	}
	if got := reg.Gauge("rtopex_core_idle_fraction", L("core", "0")).Value(); got != 0.75 {
		t.Fatalf("published idle fraction = %v, want 0.75", got)
	}
}

func TestEngineHookCounts(t *testing.T) {
	reg := NewRegistry()
	h := NewEngineHook(reg)
	h.OnAt(10, 0)
	h.OnAt(20, 0)
	h.OnStep(10)
	if got := reg.Counter("rtopex_engine_events_scheduled_total").Value(); got != 2 {
		t.Fatalf("scheduled = %d, want 2", got)
	}
	if got := reg.Counter("rtopex_engine_events_executed_total").Value(); got != 1 {
		t.Fatalf("executed = %d, want 1", got)
	}
	if got := reg.Gauge("rtopex_engine_clock_us").Value(); got != 10 {
		t.Fatalf("clock = %v, want 10", got)
	}
}
