package obs

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// apiServer mounts the /api routes over a resolver on a test server.
func apiServer(t *testing.T, resolve HistoryResolver) *httptest.Server {
	t.Helper()
	mux := http.NewServeMux()
	for _, rt := range APIRoutes(resolve) {
		mux.Handle(rt.Pattern, rt.Handler)
	}
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)
	return srv
}

// getJSON fetches a URL, requires 200, and decodes the body into out.
func getJSON(t *testing.T, url string, out any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s = %d", url, resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Fatalf("GET %s content-type = %q", url, ct)
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		t.Fatal(err)
	}
}

func getStatus(t *testing.T, url string) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	return resp.StatusCode
}

// TestAPIRoutes: the four endpoints answer JSON over a single-process
// history, with parameter validation and source 404s.
func TestAPIRoutes(t *testing.T) {
	db := NewTSDB(TSDBConfig{Step: time.Second, Retention: time.Minute})
	reg := NewRegistry()
	c := reg.Counter("n_total")
	h := reg.Histogram("lat")
	for i := 0; i < 10; i++ {
		c.Add(10)
		h.Observe(float64(i + 1))
		db.Observe(time.UnixMilli(int64(i)*1000), reg.Snapshot())
	}
	slo := NewSLOEngine(db, Objective{
		Name:        "burn",
		Numerator:   []string{"absent_total"},
		Denominator: []string{"n_total"},
		Target:      0.01,
		Window:      time.Minute,
	})
	slo.Evaluate(time.UnixMilli(9000))
	srv := apiServer(t, SingleHistory(db, slo))

	var series struct {
		StepMS  int64        `json:"step_ms"`
		Scrapes int64        `json:"scrapes"`
		Series  []SeriesInfo `json:"series"`
	}
	getJSON(t, srv.URL+"/api/series", &series)
	if series.StepMS != 1000 || series.Scrapes != 10 || len(series.Series) != 2 {
		t.Fatalf("/api/series = %+v", series)
	}

	var q QueryResult
	getJSON(t, srv.URL+"/api/query?series=n_total&fn=increase&window=5s", &q)
	if !q.OK || q.Value != 50 || q.WindowMS != 5000 {
		t.Fatalf("/api/query increase = %+v", q)
	}
	// fn defaults to rate, window to 1m; points=1 attaches raw samples.
	getJSON(t, srv.URL+"/api/query?series=n_total&points=1", &q)
	if !q.OK || q.Fn != FnRate || q.Value != 10 || len(q.Points) != 10 {
		t.Fatalf("/api/query defaults = %+v", q)
	}
	getJSON(t, srv.URL+"/api/query?series=lat&fn=quantile&q=0.5&window=30s", &q)
	if !q.OK || q.Q != 0.5 || q.Value <= 0 {
		t.Fatalf("/api/query quantile = %+v", q)
	}

	var slores struct {
		Version    int               `json:"slo_version"`
		Objectives []ObjectiveStatus `json:"objectives"`
	}
	getJSON(t, srv.URL+"/api/slo", &slores)
	if slores.Version != SLOVersion || len(slores.Objectives) != 1 || slores.Objectives[0].Objective.Name != "burn" {
		t.Fatalf("/api/slo = %+v", slores)
	}
	if !slores.Objectives[0].Ready || slores.Objectives[0].Errors != 0 {
		t.Fatalf("/api/slo status = %+v, want ready with zero errors", slores.Objectives[0])
	}

	var alerts struct {
		Version int     `json:"slo_version"`
		Alerts  []Alert `json:"alerts"`
	}
	getJSON(t, srv.URL+"/api/alerts", &alerts)
	if alerts.Version != SLOVersion || len(alerts.Alerts) != 1 || alerts.Alerts[0].State != AlertInactive {
		t.Fatalf("/api/alerts = %+v", alerts)
	}

	// Validation and source resolution.
	for url, want := range map[string]int{
		"/api/query":                                      http.StatusBadRequest, // missing series
		"/api/query?series=n_total&window=x":              http.StatusBadRequest,
		"/api/query?series=n_total&window=0s":             http.StatusBadRequest,
		"/api/query?series=lat&fn=quantile&q=2&window=5s": http.StatusBadRequest,
		"/api/series?source=bogus":                        http.StatusNotFound,
		"/api/query?source=bogus&series=n_total":          http.StatusNotFound,
		"/api/slo?source=bogus":                           http.StatusNotFound,
		"/api/alerts?source=bogus":                        http.StatusNotFound,
		"/api/series?source=local":                        http.StatusOK, // the single-process alias
	} {
		if got := getStatus(t, srv.URL+url); got != want {
			t.Fatalf("GET %s = %d, want %d", url, got, want)
		}
	}
}

// TestAPIRoutesWithoutSLO: a view with no engine serves empty objective and
// alert lists rather than erroring.
func TestAPIRoutesWithoutSLO(t *testing.T) {
	db := NewTSDB(TSDBConfig{})
	srv := apiServer(t, SingleHistory(db, nil))
	var slores struct {
		Version    int               `json:"slo_version"`
		Objectives []ObjectiveStatus `json:"objectives"`
	}
	getJSON(t, srv.URL+"/api/slo", &slores)
	if slores.Version != SLOVersion || len(slores.Objectives) != 0 {
		t.Fatalf("/api/slo without engine = %+v", slores)
	}
	var alerts struct {
		Alerts []Alert `json:"alerts"`
	}
	getJSON(t, srv.URL+"/api/alerts", &alerts)
	if len(alerts.Alerts) != 0 {
		t.Fatalf("/api/alerts without engine = %+v", alerts)
	}
}

// TestFleetHistory: per-source and merged timelines diverge correctly, the
// resolver serves both, evicted sources lose their timelines, and the
// merged SLO engine sees fleet-level ratios.
func TestFleetHistory(t *testing.T) {
	col := NewCollector(CollectorConfig{})
	now := time.UnixMilli(1_700_000_000_000)
	hist := NewFleetHistory(col, FleetHistoryConfig{
		TSDB: TSDBConfig{Step: time.Second, Retention: time.Minute},
		Objectives: []Objective{{
			Name:        "miss",
			Numerator:   []string{"errs_total"},
			Denominator: []string{"work_total"},
			Target:      0.01,
			Window:      10 * time.Second,
			FastWindow:  5 * time.Second,
			SlowWindow:  10 * time.Second,
		}},
		Now: func() time.Time { return now },
	})
	col.AttachHistory(hist)

	regA, regB := NewRegistry(), NewRegistry()
	workA := regA.Counter("work_total")
	errsA := regA.Counter("errs_total")
	workB := regB.Counter("work_total")
	push := func(id string, seq uint64, reg *Registry) {
		t.Helper()
		if _, err := col.Ingest(wireFor(t, id, seq, false, reg)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 12; i++ {
		workA.Add(50)
		errsA.Add(5)
		workB.Add(50)
		push("a", uint64(i+1), regA)
		push("b", uint64(i+1), regB)
		hist.Tick()
		now = now.Add(time.Second)
	}

	// Merged timeline: both sources' work sums; only A contributes errors.
	merged, ok := hist.Resolve("")
	if !ok || merged.DB != hist.Merged() || merged.SLO == nil {
		t.Fatalf("Resolve(\"\") = %+v", merged)
	}
	if v, _, ok := merged.DB.Increase("work_total", 5*time.Second); !ok || v != 500 {
		t.Fatalf("merged work increase = %v (ok=%v), want 500", v, ok)
	}
	// Per-source timelines keep each source's own counters.
	viewA, ok := hist.Resolve("a")
	if !ok || viewA.SLO != nil {
		t.Fatalf("Resolve(a) = %+v, want a bare per-source view", viewA)
	}
	if v, _, ok := viewA.DB.Increase("work_total", 5*time.Second); !ok || v != 250 {
		t.Fatalf("source-a work increase = %v (ok=%v), want 250", v, ok)
	}
	viewB, _ := hist.Resolve("b")
	if _, _, ok := viewB.DB.Increase("errs_total", 5*time.Second); ok {
		t.Fatal("source b should have no errs_total timeline")
	}
	if _, ok := hist.Resolve("nope"); ok {
		t.Fatal("unknown source should not resolve")
	}
	if got := hist.SourceIDs(); len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Fatalf("SourceIDs = %v", got)
	}

	// The fleet-level SLO sees 5/100 = 5% against a 1% target: firing
	// (pending 0) — and "fleet" aliases the merged view.
	fleet, ok := hist.Resolve("fleet")
	if !ok || fleet.SLO == nil {
		t.Fatal("Resolve(fleet) should alias the merged view")
	}
	if as := fleet.SLO.Alerts(); len(as) != 1 || as[0].State != AlertFiring {
		t.Fatalf("fleet alerts = %+v, want firing", as)
	}

	// The dashboard carries the history section.
	var dash strings.Builder
	col.WriteDashboard(&dash)
	if !strings.Contains(dash.String(), "slo:") || !strings.Contains(dash.String(), "alert miss") {
		t.Fatalf("dashboard missing history section:\n%s", dash.String())
	}

	// Source eviction drops its timeline on the next tick.
	colEvict := NewCollector(CollectorConfig{Stale: 2 * time.Second, Now: func() time.Time { return now }})
	histEvict := NewFleetHistory(colEvict, FleetHistoryConfig{
		TSDB: TSDBConfig{Step: time.Second},
		Now:  func() time.Time { return now },
	})
	push2 := func(id string, seq uint64, reg *Registry) {
		t.Helper()
		if _, err := colEvict.Ingest(wireFor(t, id, seq, false, reg)); err != nil {
			t.Fatal(err)
		}
	}
	push2("gone", 1, regA)
	histEvict.Tick()
	if got := histEvict.SourceIDs(); len(got) != 1 {
		t.Fatalf("SourceIDs before eviction = %v", got)
	}
	now = now.Add(5 * time.Second)
	colEvict.EvictStale()
	histEvict.Tick()
	if got := histEvict.SourceIDs(); len(got) != 0 {
		t.Fatalf("SourceIDs after eviction = %v, want none", got)
	}
}

// TestSparkline: scaling, downsampling, and edge cases of the text
// sparkline.
func TestSparkline(t *testing.T) {
	if got := Sparkline(nil, 5); got != "     " {
		t.Fatalf("empty sparkline = %q", got)
	}
	flat := make([]Point, 4)
	for i := range flat {
		flat[i] = Point{T: int64(i), V: 7}
	}
	if got := Sparkline(flat, 4); got != "▁▁▁▁" {
		t.Fatalf("flat sparkline = %q", got)
	}
	ramp := make([]Point, 8)
	for i := range ramp {
		ramp[i] = Point{T: int64(i), V: float64(i)}
	}
	got := Sparkline(ramp, 8)
	if []rune(got)[0] != '▁' || []rune(got)[7] != '█' {
		t.Fatalf("ramp sparkline = %q, want ▁..█", got)
	}
	// Fewer points than cells: empty cells carry the previous level instead
	// of dropping to baseline.
	sparse := []rune(Sparkline([]Point{{T: 0, V: 0}, {T: 1, V: 10}}, 6))
	if len(sparse) != 6 || sparse[3] != '█' || sparse[4] != '█' || sparse[5] != '█' {
		t.Fatalf("sparse sparkline = %q, want the peak carried to the end", string(sparse))
	}
	if got := Sparkline(ramp, 0); len([]rune(got)) != 40 {
		t.Fatalf("width 0 should default to 40, got %d", len([]rune(got)))
	}
}

// TestDossierStoreRefs: ingest stamps the injected clock and
// DossierRefsSince filters on it.
func TestDossierStoreRefs(t *testing.T) {
	now := time.UnixMilli(10_000)
	store := NewDossierStore(DossierStoreConfig{Now: func() time.Time { return now }})
	for i := 0; i < 3; i++ {
		doc := fmt.Sprintf(`{"flight_version":1,"label":"d%d","trigger":"deadline-miss","seq":%d}`, i, i)
		if err := store.Ingest("w", []byte(doc)); err != nil {
			t.Fatal(err)
		}
		now = now.Add(time.Second)
	}
	all := store.DossierRefsSince(time.UnixMilli(0))
	if len(all) != 3 || all[0].Label != "d0" || all[0].CapturedMS != 10_000 {
		t.Fatalf("all refs = %+v", all)
	}
	late := store.DossierRefsSince(time.UnixMilli(11_000))
	if len(late) != 2 || late[0].Label != "d1" {
		t.Fatalf("late refs = %+v", late)
	}
	if got := store.List(); len(got) != 3 || got[0].IngestMS != 10_000 {
		t.Fatalf("List = %+v, want ingest_ms stamped", got)
	}
}
