package obs

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"
	"time"
)

func wireFor(t *testing.T, id string, seq uint64, final bool, reg *Registry) *WireSnapshot {
	t.Helper()
	return &WireSnapshot{
		Version:  WireVersion,
		Source:   Source{ID: id, Host: "h", PID: 1},
		Seq:      seq,
		Final:    final,
		Snapshot: reg.Snapshot(),
	}
}

// TestCollectorMergeMatchesInProcess: the collector's merged view over N
// pushed sources equals the registry one process would build merging the
// same registries directly.
func TestCollectorMergeMatchesInProcess(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	col := NewCollector(CollectorConfig{})
	inProc := NewRegistry()
	for i := 0; i < 5; i++ {
		reg := randomRegistry(rng)
		inProc.Merge(reg)
		if _, err := col.Ingest(wireFor(t, fmt.Sprintf("src-%d", i), 1, false, reg)); err != nil {
			t.Fatal(err)
		}
	}
	if want, got := inProc.Snapshot(), col.Merged(); !reflect.DeepEqual(want, got) {
		t.Fatalf("merged view differs:\nwant %+v\ngot  %+v", want, got)
	}
}

// TestCollectorDuplicateAndStalePushes: re-ingesting the same or an older
// seq refreshes liveness but never regresses the stored state.
func TestCollectorDuplicateAndStalePushes(t *testing.T) {
	col := NewCollector(CollectorConfig{})
	r1 := NewRegistry()
	r1.Counter("x_total").Add(1)
	r2 := NewRegistry()
	r2.Counter("x_total").Add(5)

	if applied, err := col.Ingest(wireFor(t, "w", 1, false, r1)); err != nil || !applied {
		t.Fatalf("first push: applied=%v err=%v", applied, err)
	}
	if applied, err := col.Ingest(wireFor(t, "w", 2, false, r2)); err != nil || !applied {
		t.Fatalf("second push: applied=%v err=%v", applied, err)
	}
	// A retried (duplicate seq) and an out-of-order (older seq) push are
	// both absorbed without changing state.
	for _, seq := range []uint64{2, 1} {
		if applied, err := col.Ingest(wireFor(t, "w", seq, false, r1)); err != nil || applied {
			t.Fatalf("seq %d: applied=%v err=%v, want ignored", seq, applied, err)
		}
	}
	if v, ok := col.Merged().CounterValue("x_total"); !ok || v != 5 {
		t.Fatalf("merged x_total = %d (ok=%v), want 5", v, ok)
	}
	srcs := col.Sources()
	if len(srcs) != 1 || srcs[0].Pushes != 4 || srcs[0].Duplicates != 2 || srcs[0].Seq != 2 {
		t.Fatalf("source status = %+v", srcs)
	}
}

// TestCollectorStaleEviction: silent non-final sources are evicted after
// the staleness window; final sources survive indefinitely.
func TestCollectorStaleEviction(t *testing.T) {
	now := time.Unix(1000, 0)
	col := NewCollector(CollectorConfig{Stale: time.Minute, Now: func() time.Time { return now }})
	live := NewRegistry()
	live.Counter("live_total").Inc()
	dead := NewRegistry()
	dead.Counter("dead_total").Inc()
	done := NewRegistry()
	done.Counter("done_total").Inc()

	col.Ingest(wireFor(t, "dead", 1, false, dead))
	col.Ingest(wireFor(t, "done", 1, true, done))
	now = now.Add(45 * time.Second)
	col.Ingest(wireFor(t, "live", 1, false, live))

	// 45s later: "dead" is 90s silent (evicted), "live" 45s (kept),
	// "done" 90s silent but final (kept).
	now = now.Add(45 * time.Second)
	merged := col.Merged()
	if _, ok := merged.CounterValue("dead_total"); ok {
		t.Fatal("stale source not evicted from merge")
	}
	if _, ok := merged.CounterValue("live_total"); !ok {
		t.Fatal("fresh source evicted")
	}
	if _, ok := merged.CounterValue("done_total"); !ok {
		t.Fatal("final source evicted")
	}
	if col.Evicted() != 1 {
		t.Fatalf("evicted = %d, want 1", col.Evicted())
	}
	// A re-push resurrects an evicted source.
	col.Ingest(wireFor(t, "dead", 2, false, dead))
	if _, ok := col.Merged().CounterValue("dead_total"); !ok {
		t.Fatal("re-pushed source missing")
	}
}

// TestCollectorHandlerPushAndScrape exercises the HTTP surface end to end:
// push via POST, scrape the merged /metrics, read /sources, / and /dump.
func TestCollectorHandlerPushAndScrape(t *testing.T) {
	col := NewCollector(CollectorConfig{})
	srv := httptest.NewServer(col.Handler())
	defer srv.Close()

	reg := NewRegistry()
	reg.SetHelp("pushed_total", "Pushed.")
	reg.Counter("pushed_total").Add(3)
	var body bytes.Buffer
	if err := EncodeWire(&body, wireFor(t, "w1", 1, false, reg)); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(srv.URL+PushPath, "application/json", bytes.NewReader(body.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("push status = %d", resp.StatusCode)
	}

	code, metrics, hdr := get(t, srv, "/metrics")
	if code != http.StatusOK || hdr.Get("Content-Type") != ContentType {
		t.Fatalf("/metrics: code=%d type=%q", code, hdr.Get("Content-Type"))
	}
	if !strings.Contains(metrics, "# HELP pushed_total Pushed.") || !strings.Contains(metrics, "pushed_total 3") {
		t.Fatalf("/metrics body:\n%s", metrics)
	}

	if code, body, _ := get(t, srv, "/sources"); code != http.StatusOK || !strings.Contains(body, "w1") {
		t.Fatalf("/sources: code=%d body=%q", code, body)
	}
	if code, body, _ := get(t, srv, "/"); code != http.StatusOK || !strings.Contains(body, "1 source(s)") {
		t.Fatalf("dashboard: code=%d body=%q", code, body)
	}
	if code, body, _ := get(t, srv, "/dump"); code != http.StatusOK || !strings.Contains(body, `"wire_version"`) {
		t.Fatalf("/dump: code=%d body=%q", code, body)
	}

	// GET on /push is rejected; a malformed body is a 400 and leaves the
	// collector untouched.
	resp, err = http.Get(srv.URL + PushPath)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /push status = %d", resp.StatusCode)
	}
	resp, err = http.Post(srv.URL+PushPath, "application/json", strings.NewReader("{broken"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed push status = %d", resp.StatusCode)
	}
	if n := len(col.Sources()); n != 1 {
		t.Fatalf("sources after bad push = %d, want 1", n)
	}
}

// errAfterReader yields its prefix then fails, emulating a worker whose
// connection drops mid-push.
type errAfterReader struct {
	data []byte
	off  int
}

func (r *errAfterReader) Read(p []byte) (int, error) {
	if r.off >= len(r.data) {
		return 0, errors.New("connection reset mid-push")
	}
	n := copy(p, r.data[r.off:])
	r.off += n
	return n, nil
}

// TestCollectorDisconnectMidPush: a push whose body dies partway through
// must be rejected whole — no partial ingest, prior state intact.
func TestCollectorDisconnectMidPush(t *testing.T) {
	col := NewCollector(CollectorConfig{})
	srv := httptest.NewServer(col.Handler())
	defer srv.Close()

	// Establish good state first.
	reg := NewRegistry()
	reg.Counter("x_total").Add(7)
	var good bytes.Buffer
	if err := EncodeWire(&good, wireFor(t, "w", 1, false, reg)); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(srv.URL+PushPath, "application/json", bytes.NewReader(good.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	// Now a push that breaks after half the bytes. The client may see a
	// transport error or a non-200; either way the collector must not
	// apply it.
	reg2 := NewRegistry()
	reg2.Counter("x_total").Add(9999)
	var big bytes.Buffer
	if err := EncodeWire(&big, wireFor(t, "w", 2, false, reg2)); err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodPost, srv.URL+PushPath,
		&errAfterReader{data: big.Bytes()[:big.Len()/2]})
	if err != nil {
		t.Fatal(err)
	}
	req.ContentLength = int64(big.Len()) // promise more than will arrive
	if resp, err := http.DefaultClient.Do(req); err == nil {
		if resp.StatusCode == http.StatusOK {
			t.Fatal("mid-push disconnect returned 200")
		}
		resp.Body.Close()
	}

	if v, ok := col.Merged().CounterValue("x_total"); !ok || v != 7 {
		t.Fatalf("state after broken push: x_total = %d (ok=%v), want 7", v, ok)
	}
	srcs := col.Sources()
	if len(srcs) != 1 || srcs[0].Seq != 1 {
		t.Fatalf("source after broken push = %+v, want seq 1", srcs)
	}
}

// TestCollectorDumpRoundTrips: the archival dump carries the merged
// snapshot and ledger as JSON.
func TestCollectorDump(t *testing.T) {
	col := NewCollector(CollectorConfig{Now: func() time.Time { return time.Unix(5, 0) }})
	reg := NewRegistry()
	reg.Counter("n_total").Add(2)
	col.Ingest(wireFor(t, "w", 1, true, reg))
	var buf bytes.Buffer
	if err := col.WriteDump(&buf); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"wire_version": 1`, `"n_total"`, `"final": true`} {
		if !strings.Contains(buf.String(), want) {
			t.Fatalf("dump missing %q:\n%s", want, buf.String())
		}
	}
}

var _ io.Reader = (*errAfterReader)(nil)
