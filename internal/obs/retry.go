package obs

import (
	"errors"
	"fmt"
	"time"
)

// RetryPolicy is the bounded-retry/backoff schedule shared by every HTTP
// client in the fleet: the push client (Pusher) and the sweep-fleet lease
// client both drive their attempts through it, so "how a worker survives a
// flaky coordinator" is defined in exactly one place.
//
// The schedule: up to Attempts tries, sleeping Backoff before the first
// retry and doubling per retry up to Cap. An attempt that returns an error
// wrapped by Permanent stops the loop immediately — resending will not
// change the answer (the pusher maps HTTP 4xx here).
type RetryPolicy struct {
	// Attempts is the total number of tries (first attempt included);
	// values < 1 mean 1.
	Attempts int
	// Backoff is the delay before the first retry, doubling per retry
	// (default 100ms).
	Backoff time.Duration
	// Cap bounds the grown backoff (default 1s).
	Cap time.Duration
	// Sleep substitutes the delay function (tests); nil means time.Sleep.
	Sleep func(time.Duration)
	// Logf, when non-nil, receives one line per transient failure.
	Logf func(format string, args ...any)
}

// permanentError marks an error as not worth retrying.
type permanentError struct{ err error }

func (e *permanentError) Error() string { return e.err.Error() }
func (e *permanentError) Unwrap() error { return e.err }

// Permanent wraps err so RetryPolicy.Do stops retrying and returns it
// (unwrapped) at once. A nil err stays nil.
func Permanent(err error) error {
	if err == nil {
		return nil
	}
	return &permanentError{err: err}
}

// IsPermanent reports whether err carries the Permanent marker.
func IsPermanent(err error) bool {
	var pe *permanentError
	return errors.As(err, &pe)
}

// Do runs attempt under the policy. On success it returns nil; on a
// permanent error it returns that error immediately (unwrapped); when the
// budget is exhausted it returns the last error annotated with the attempt
// count. desc names the operation in log lines and the final error.
func (p RetryPolicy) Do(desc string, attempt func() error) error {
	attempts := p.Attempts
	if attempts < 1 {
		attempts = 1
	}
	backoff := p.Backoff
	if backoff <= 0 {
		backoff = 100 * time.Millisecond
	}
	cap := p.Cap
	if cap <= 0 {
		cap = time.Second
	}
	sleep := p.Sleep
	if sleep == nil {
		sleep = time.Sleep
	}
	var lastErr error
	for i := 0; i < attempts; i++ {
		err := attempt()
		if err == nil {
			return nil
		}
		var pe *permanentError
		if errors.As(err, &pe) {
			return pe.err
		}
		lastErr = err
		if i < attempts-1 {
			if p.Logf != nil {
				p.Logf("%s attempt %d/%d failed (%v), retrying in %s", desc, i+1, attempts, err, backoff)
			}
			sleep(backoff)
			backoff *= 2
			if backoff > cap {
				backoff = cap
			}
		}
	}
	return fmt.Errorf("%s failed after %d attempt(s): %v", desc, attempts, lastErr)
}
