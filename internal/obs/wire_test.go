package obs

import (
	"bytes"
	"fmt"
	"math/rand"
	"reflect"
	"strings"
	"testing"
)

// randomRegistry fills a registry with a randomized mix of counters, gauges
// and histograms (seeded, so failures reproduce).
func randomRegistry(rng *rand.Rand) *Registry {
	reg := NewRegistry()
	for i := 0; i < 1+rng.Intn(4); i++ {
		name := fmt.Sprintf("c_%d_total", rng.Intn(5))
		reg.SetHelp(name, "counter "+name)
		reg.Counter(name, L("shard", fmt.Sprint(rng.Intn(3)))).Add(rng.Int63n(1e6))
	}
	for i := 0; i < 1+rng.Intn(4); i++ {
		name := fmt.Sprintf("g_%d", rng.Intn(5))
		reg.Gauge(name, L("core", fmt.Sprint(rng.Intn(4)))).Set(rng.NormFloat64() * 1e3)
	}
	for i := 0; i < 1+rng.Intn(3); i++ {
		h := reg.Histogram(fmt.Sprintf("h_%d_seconds", rng.Intn(3)))
		for n := 0; n < 1+rng.Intn(200); n++ {
			switch rng.Intn(10) {
			case 0:
				h.Observe(0)
			case 1:
				h.Observe(-rng.ExpFloat64() * 100)
			default:
				h.Observe(rng.ExpFloat64() * 1e4)
			}
		}
	}
	return reg
}

func encodeDecode(t *testing.T, ws *WireSnapshot) *WireSnapshot {
	t.Helper()
	var buf bytes.Buffer
	if err := EncodeWire(&buf, ws); err != nil {
		t.Fatalf("encode: %v", err)
	}
	out, err := DecodeWire(&buf)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	return out
}

// TestWireRoundTripMergeIdentity is the codec's core property: merging
// decoded snapshots must be bit-identical to merging the live registries in
// process — bucket for bucket, series for series — across many randomized
// registry pairs.
func TestWireRoundTripMergeIdentity(t *testing.T) {
	for seed := int64(0); seed < 25; seed++ {
		rng := rand.New(rand.NewSource(seed))
		a, b := randomRegistry(rng), randomRegistry(rng)

		inProc := NewRegistry()
		inProc.Merge(a)
		inProc.Merge(b)

		overWire := NewRegistry()
		for i, reg := range []*Registry{a, b} {
			ws := encodeDecode(t, &WireSnapshot{
				Source:   Source{ID: fmt.Sprintf("src-%d", i)},
				Seq:      uint64(i + 1),
				Snapshot: reg.Snapshot(),
			})
			overWire.MergeSnapshot(ws.Snapshot)
		}

		want, got := inProc.Snapshot(), overWire.Snapshot()
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("seed %d: wire merge differs from in-process merge:\nwant %+v\ngot  %+v", seed, want, got)
		}

		// The Prometheus rendering (what the collector serves) must agree
		// byte for byte too.
		var wantProm, gotProm bytes.Buffer
		if err := inProc.WriteProm(&wantProm); err != nil {
			t.Fatal(err)
		}
		if err := overWire.WriteProm(&gotProm); err != nil {
			t.Fatal(err)
		}
		if wantProm.String() != gotProm.String() {
			t.Fatalf("seed %d: prom rendering differs after wire round-trip", seed)
		}
	}
}

// TestWireEncodingDeterministic pins that encoding the same registry state
// twice yields identical bytes (the smoke test's diffability rests on it).
func TestWireEncodingDeterministic(t *testing.T) {
	reg := randomRegistry(rand.New(rand.NewSource(7)))
	mk := func() string {
		var buf bytes.Buffer
		if err := EncodeWire(&buf, &WireSnapshot{Source: Source{ID: "s"}, Seq: 3, Snapshot: reg.Snapshot()}); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	if a, b := mk(), mk(); a != b {
		t.Fatalf("non-deterministic encoding:\n%s\nvs\n%s", a, b)
	}
}

// TestWireHelpSurvives checks HELP text crosses the wire, so the merged
// /metrics exposition matches a single process's.
func TestWireHelpSurvives(t *testing.T) {
	reg := NewRegistry()
	reg.SetHelp("x_total", "The x count.")
	reg.Counter("x_total").Inc()
	ws := encodeDecode(t, &WireSnapshot{Source: Source{ID: "s"}, Seq: 1, Snapshot: reg.Snapshot()})
	merged := NewRegistry()
	merged.MergeSnapshot(ws.Snapshot)
	var buf bytes.Buffer
	if err := merged.WriteProm(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "# HELP x_total The x count.") {
		t.Fatalf("help lost over the wire:\n%s", buf.String())
	}
}

func TestWireVersionAndValidation(t *testing.T) {
	snap := NewRegistry().Snapshot()
	cases := []struct {
		name string
		in   string
	}{
		{"future version", `{"version":99,"source":{"id":"s"},"seq":1,"snapshot":{}}`},
		{"zero version", `{"source":{"id":"s"},"seq":1,"snapshot":{}}`},
		{"missing source id", `{"version":1,"source":{},"seq":1,"snapshot":{}}`},
		{"missing payload", `{"version":1,"source":{"id":"s"},"seq":1}`},
		{"malformed json", `{"version":1,`},
	}
	for _, c := range cases {
		if _, err := DecodeWire(strings.NewReader(c.in)); err == nil {
			t.Errorf("%s: decode accepted %q", c.name, c.in)
		}
	}
	// Encode stamps the current version even when the caller leaves it 0.
	var buf bytes.Buffer
	if err := EncodeWire(&buf, &WireSnapshot{Source: Source{ID: "s"}, Snapshot: snap}); err != nil {
		t.Fatal(err)
	}
	ws, err := DecodeWire(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if ws.Version != WireVersion {
		t.Fatalf("decoded version = %d, want %d", ws.Version, WireVersion)
	}
	// Encoding an invalid envelope must fail rather than emit garbage.
	if err := EncodeWire(&buf, &WireSnapshot{Snapshot: snap}); err == nil {
		t.Fatal("encode accepted an envelope without a source id")
	}
}
