package obs

import (
	"fmt"
	"sort"
	"sync"
	"time"
)

// The history plane: a fixed-memory, in-process time-series store sampling
// registry snapshots into per-series ring buffers, answering the windowed
// queries the snapshot-only plane cannot — "miss rate over the last 30 s",
// "p99 processing time over the last 5 min" — and feeding the SLO engine
// (slo.go) its burn-rate inputs.
//
// Design constraints, in order:
//
//   - Fixed memory. Ring capacity is Retention/Step per scalar series and
//     HistogramRetention/Step per histogram series, decided at construction;
//     a scrape never grows a ring. Series count follows registry
//     cardinality, which the emitting code already bounds.
//   - Deterministic. Observe takes the sample time explicitly; every query
//     is anchored at the newest sample, not the wall clock. Replaying the
//     same (time, snapshot) sequence reproduces every answer bit-for-bit —
//     the property the SLO engine's seeded alert-transition tests rely on.
//   - Exact over counters. A windowed counter increase is the difference of
//     two stored samples, and histogram-delta quantiles subtract bucket
//     counts integer-for-integer, so windowed answers inherit the
//     registry's merge-exactness (property-tested in tsdb_test.go).

// TSDBConfig bounds a TSDB. The zero value is usable.
type TSDBConfig struct {
	// Step is the expected scrape interval (default 1s). It sizes the rings
	// (points = Retention/Step) and is reported by /api/series; Observe does
	// not enforce it.
	Step time.Duration
	// Retention is how far back scalar (counter/gauge) series answer
	// queries (default 1h).
	Retention time.Duration
	// HistogramRetention bounds histogram series separately (default 10m):
	// one histogram sample stores every occupied bucket, so an hour of them
	// costs ~100× an hour of float64s. Raise it only with a coarser Step.
	HistogramRetention time.Duration
}

func (c *TSDBConfig) defaults() {
	if c.Step <= 0 {
		c.Step = time.Second
	}
	if c.Retention <= 0 {
		c.Retention = time.Hour
	}
	if c.HistogramRetention <= 0 {
		c.HistogramRetention = 10 * time.Minute
	}
}

// points converts a retention window into a ring capacity (≥ 2 so every
// series can answer at least one delta).
func (c *TSDBConfig) points(retention time.Duration) int {
	n := int(retention / c.Step)
	if n < 2 {
		n = 2
	}
	return n
}

// Point is one stored sample of a scalar series.
type Point struct {
	// T is the sample time in Unix milliseconds.
	T int64 `json:"t"`
	// V is the sampled value (counter cumulative value or gauge reading).
	V float64 `json:"v"`
}

// tseries is one series' ring: times always, plus either scalar values or
// histogram snapshots depending on kind.
type tseries struct {
	kind  kind
	times []int64
	vals  []float64
	hists []HistogramValue
	head  int // index of the oldest sample
	n     int
}

func (s *tseries) push(t int64, v float64, h HistogramValue) {
	var i int
	if s.n < len(s.times) {
		i = s.head + s.n
		if i >= len(s.times) {
			i -= len(s.times)
		}
		s.n++
	} else {
		i = s.head
		s.head++
		if s.head == len(s.times) {
			s.head = 0
		}
	}
	s.times[i] = t
	if s.vals != nil {
		s.vals[i] = v
	} else {
		s.hists[i] = h
	}
}

// at returns the k-th oldest retained sample index (0 ≤ k < n).
func (s *tseries) at(k int) int {
	i := s.head + k
	if i >= len(s.times) {
		i -= len(s.times)
	}
	return i
}

// oldestSince returns the index (into 0..n-1 logical order) of the oldest
// sample with time ≥ cutoff, or -1 when none qualifies. Samples are pushed
// in nondecreasing time order, so a binary search applies.
func (s *tseries) oldestSince(cutoff int64) int {
	lo, hi := 0, s.n // first k with times[at(k)] >= cutoff
	for lo < hi {
		mid := (lo + hi) / 2
		if s.times[s.at(mid)] >= cutoff {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	if lo == s.n {
		return -1
	}
	return lo
}

// TSDB is the in-process time-series store. All methods are safe for
// concurrent use; Observe and the query methods share one mutex, so a
// scrape and an /api/query never interleave mid-sample.
type TSDB struct {
	mu      sync.Mutex
	cfg     TSDBConfig
	series  map[string]*tseries
	scrapes int64
}

// NewTSDB creates an empty store.
func NewTSDB(cfg TSDBConfig) *TSDB {
	cfg.defaults()
	return &TSDB{cfg: cfg, series: map[string]*tseries{}}
}

// Step reports the configured scrape step.
func (db *TSDB) Step() time.Duration { return db.cfg.Step }

// Observe samples one snapshot at time t. Every series in the snapshot gets
// one sample; series absent from the snapshot simply age out of their
// retention window. Samples must arrive in nondecreasing time order (the
// scraper guarantees it); an out-of-order sample is dropped.
func (db *TSDB) Observe(t time.Time, snap *Snapshot) {
	if snap == nil {
		return
	}
	ms := t.UnixMilli()
	db.mu.Lock()
	defer db.mu.Unlock()
	db.scrapes++
	for _, c := range snap.Counters {
		db.push(SeriesID(c.Name, c.Labels), counterKind, ms, float64(c.Value), HistogramValue{})
	}
	for _, g := range snap.Gauges {
		db.push(SeriesID(g.Name, g.Labels), gaugeKind, ms, g.Value, HistogramValue{})
	}
	for _, h := range snap.Histograms {
		db.push(SeriesID(h.Name, h.Labels), histogramKind, ms, 0, h.Value)
	}
}

// Scrapes reports how many snapshots have been observed.
func (db *TSDB) Scrapes() int64 {
	db.mu.Lock()
	defer db.mu.Unlock()
	return db.scrapes
}

func (db *TSDB) push(id string, k kind, ms int64, v float64, h HistogramValue) {
	s, ok := db.series[id]
	if !ok {
		s = &tseries{kind: k}
		if k == histogramKind {
			n := db.cfg.points(db.cfg.HistogramRetention)
			s.times = make([]int64, n)
			s.hists = make([]HistogramValue, n)
		} else {
			n := db.cfg.points(db.cfg.Retention)
			s.times = make([]int64, n)
			s.vals = make([]float64, n)
		}
		db.series[id] = s
	}
	if s.kind != k {
		return // a series that changed kind keeps its original timeline
	}
	if s.n > 0 && ms < s.times[s.at(s.n-1)] {
		return // out-of-order sample
	}
	s.push(ms, v, h)
}

// SeriesInfo describes one stored series for /api/series.
type SeriesInfo struct {
	ID      string  `json:"id"`
	Kind    string  `json:"kind"`
	Points  int     `json:"points"`
	FirstMS int64   `json:"first_ms"`
	LastMS  int64   `json:"last_ms"`
	Last    float64 `json:"last,omitempty"`
}

// Series lists the stored series sorted by id.
func (db *TSDB) Series() []SeriesInfo {
	db.mu.Lock()
	defer db.mu.Unlock()
	out := make([]SeriesInfo, 0, len(db.series))
	for id, s := range db.series {
		if s.n == 0 {
			continue
		}
		info := SeriesInfo{
			ID:      id,
			Kind:    s.kind.String(),
			Points:  s.n,
			FirstMS: s.times[s.at(0)],
			LastMS:  s.times[s.at(s.n-1)],
		}
		if s.vals != nil {
			info.Last = s.vals[s.at(s.n-1)]
		}
		out = append(out, info)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// window resolves the [newest−window, newest] sample index range of one
// series: the newest sample and the oldest retained sample inside the
// window. ok is false when the series is missing, empty, or has no second
// in-window sample to difference against.
func (db *TSDB) window(id string, window time.Duration) (s *tseries, k0, k1 int, ok bool) {
	s, found := db.series[id]
	if !found || s.n == 0 {
		return nil, 0, 0, false
	}
	k1 = s.n - 1
	last := s.times[s.at(k1)]
	k0 = s.oldestSince(last - window.Milliseconds())
	if k0 < 0 || k0 >= k1 {
		return nil, 0, 0, false
	}
	return s, k0, k1, true
}

// Increase returns a counter's increase over the window ending at its
// newest sample, plus the actual seconds spanned by the two samples used.
// A decrease (counter reset, e.g. a fleet source evicted mid-run) clamps
// to the newest value — Prometheus's reset convention. ok is false when
// the series is absent, is not a counter, or holds fewer than two
// in-window samples.
func (db *TSDB) Increase(id string, window time.Duration) (delta, seconds float64, ok bool) {
	db.mu.Lock()
	defer db.mu.Unlock()
	s, k0, k1, ok := db.window(id, window)
	if !ok || s.kind != counterKind {
		return 0, 0, false
	}
	v0, v1 := s.vals[s.at(k0)], s.vals[s.at(k1)]
	delta = v1 - v0
	if delta < 0 {
		delta = v1
	}
	seconds = float64(s.times[s.at(k1)]-s.times[s.at(k0)]) / 1e3
	return delta, seconds, true
}

// Rate returns a counter's per-second rate over the window (Increase over
// the spanned seconds).
func (db *TSDB) Rate(id string, window time.Duration) (perSecond float64, ok bool) {
	delta, seconds, ok := db.Increase(id, window)
	if !ok || seconds <= 0 {
		return 0, false
	}
	return delta / seconds, true
}

// Last returns a series' newest scalar sample (counters and gauges).
func (db *TSDB) Last(id string) (Point, bool) {
	db.mu.Lock()
	defer db.mu.Unlock()
	s, found := db.series[id]
	if !found || s.n == 0 || s.vals == nil {
		return Point{}, false
	}
	i := s.at(s.n - 1)
	return Point{T: s.times[i], V: s.vals[i]}, true
}

// Avg returns a gauge's mean over the in-window samples (newest-anchored).
// Single-sample windows are valid: an average needs one point, not a delta.
func (db *TSDB) Avg(id string, window time.Duration) (float64, bool) {
	db.mu.Lock()
	defer db.mu.Unlock()
	s, found := db.series[id]
	if !found || s.n == 0 || s.kind != gaugeKind {
		return 0, false
	}
	last := s.times[s.at(s.n-1)]
	k0 := s.oldestSince(last - window.Milliseconds())
	if k0 < 0 {
		return 0, false
	}
	sum := 0.0
	for k := k0; k < s.n; k++ {
		sum += s.vals[s.at(k)]
	}
	return sum / float64(s.n-k0), true
}

// HistogramDelta returns the distribution of samples a histogram observed
// inside the window: the bucket-wise difference of its newest and oldest
// in-window snapshots. Quantiles of the returned value are the windowed
// quantiles (Min/Max tighten to the delta's occupied bucket bounds, so
// clamping stays inside the window's support).
func (db *TSDB) HistogramDelta(id string, window time.Duration) (HistogramValue, bool) {
	db.mu.Lock()
	defer db.mu.Unlock()
	s, k0, k1, ok := db.window(id, window)
	if !ok || s.kind != histogramKind {
		return HistogramValue{}, false
	}
	return histogramSub(s.hists[s.at(k1)], s.hists[s.at(k0)]), true
}

// Points returns the in-window scalar samples, oldest first (for
// sparklines and /api/query?points=1).
func (db *TSDB) Points(id string, window time.Duration) []Point {
	db.mu.Lock()
	defer db.mu.Unlock()
	s, found := db.series[id]
	if !found || s.n == 0 || s.vals == nil {
		return nil
	}
	last := s.times[s.at(s.n-1)]
	k0 := s.oldestSince(last - window.Milliseconds())
	if k0 < 0 {
		return nil
	}
	out := make([]Point, 0, s.n-k0)
	for k := k0; k < s.n; k++ {
		i := s.at(k)
		out = append(out, Point{T: s.times[i], V: s.vals[i]})
	}
	return out
}

// RatioPoints renders the per-step ratio of two counters' increases as a
// time series: point k is Δnum/Δden between consecutive samples, skipping
// steps where the denominator did not move. This is the dashboard's
// sparkline form of a windowed error ratio (e.g. per-step miss rate).
func (db *TSDB) RatioPoints(numID, denID string, window time.Duration) []Point {
	num := db.Points(numID, window)
	den := db.Points(denID, window)
	if len(num) < 2 || len(den) < 2 {
		return nil
	}
	// Align by timestamp: scrapes sample both series at the same instant,
	// but one series may have appeared later.
	denAt := make(map[int64]float64, len(den))
	for _, p := range den {
		denAt[p.T] = p.V
	}
	var out []Point
	for k := 1; k < len(num); k++ {
		d1, ok1 := denAt[num[k].T]
		d0, ok0 := denAt[num[k-1].T]
		if !ok0 || !ok1 || d1 <= d0 {
			continue
		}
		dn := num[k].V - num[k-1].V
		if dn < 0 {
			dn = num[k].V
		}
		out = append(out, Point{T: num[k].T, V: dn / (d1 - d0)})
	}
	return out
}

// histogramSub returns newer − older bucket-wise: the distribution of
// samples observed between the two snapshots. Counts clamp at zero (a
// merged fleet histogram can shrink when a source is evicted). Min/Max are
// recomputed from the delta's occupied buckets — the snapshot Min/Max
// describe the whole cumulative history, not the window.
func histogramSub(newer, older HistogramValue) HistogramValue {
	d := HistogramValue{
		Sum: newer.Sum - older.Sum,
	}
	sub := func(a, b uint64) uint64 {
		if a < b {
			return 0
		}
		return a - b
	}
	d.Count = sub(newer.Count, older.Count)
	d.Zero = sub(newer.Zero, older.Zero)
	d.NonFinite = sub(newer.NonFinite, older.NonFinite)
	d.Pos = bucketSub(newer.Pos, older.Pos)
	d.Neg = bucketSub(newer.Neg, older.Neg)
	if d.Count == 0 {
		d.Sum = 0
		return d
	}
	// Tight support bounds from the delta's own buckets.
	min, max, have := deltaBounds(d)
	if have {
		d.Min, d.Max = min, max
	}
	return d
}

// deltaBounds derives [min, max] support bounds from a delta histogram's
// occupied buckets (bucket lower/upper bounds; zero counts as 0).
func deltaBounds(d HistogramValue) (min, max float64, ok bool) {
	set := func(lo, hi float64) {
		if !ok {
			min, max, ok = lo, hi, true
			return
		}
		if lo < min {
			min = lo
		}
		if hi > max {
			max = hi
		}
	}
	for _, b := range d.Neg {
		if b.Count > 0 {
			lo, hi := bucketBounds(b.Index)
			set(-hi, -lo)
		}
	}
	if d.Zero > 0 {
		set(0, 0)
	}
	for _, b := range d.Pos {
		if b.Count > 0 {
			lo, hi := bucketBounds(b.Index)
			set(lo, hi)
		}
	}
	return min, max, ok
}

// bucketSub subtracts two index-sorted bucket lists (newer − older),
// clamping at zero and dropping empty buckets.
func bucketSub(newer, older []BucketCount) []BucketCount {
	if len(newer) == 0 {
		return nil
	}
	oldAt := make(map[int]uint64, len(older))
	for _, b := range older {
		oldAt[b.Index] = b.Count
	}
	out := make([]BucketCount, 0, len(newer))
	for _, b := range newer {
		c := b.Count
		if o := oldAt[b.Index]; o < c {
			c -= o
		} else {
			c = 0
		}
		if c > 0 {
			out = append(out, BucketCount{Index: b.Index, Count: c})
		}
	}
	if len(out) == 0 {
		return nil
	}
	return out
}

// QueryFn names a windowed query function for Query / /api/query.
type QueryFn string

// Query functions. rate/increase apply to counters, avg/last to scalars,
// quantile/count/mean to histograms.
const (
	FnRate     QueryFn = "rate"
	FnIncrease QueryFn = "increase"
	FnAvg      QueryFn = "avg"
	FnLast     QueryFn = "last"
	FnQuantile QueryFn = "quantile"
	FnCount    QueryFn = "count"
	FnMean     QueryFn = "mean"
)

// QueryResult is one windowed query answer.
type QueryResult struct {
	Series string  `json:"series"`
	Fn     QueryFn `json:"fn"`
	// WindowMS is the requested window in milliseconds.
	WindowMS int64 `json:"window_ms"`
	// Q echoes the requested quantile for FnQuantile.
	Q float64 `json:"q,omitempty"`
	// Value is the answer; valid when OK.
	Value float64 `json:"value"`
	OK    bool    `json:"ok"`
	// Points carries the in-window samples when requested.
	Points []Point `json:"points,omitempty"`
}

// Query answers one windowed query. Unknown series or a function/kind
// mismatch return OK=false, never an error: the history plane is a read
// surface over whatever the registry happens to hold.
func (db *TSDB) Query(id string, fn QueryFn, window time.Duration, q float64) QueryResult {
	res := QueryResult{Series: id, Fn: fn, WindowMS: window.Milliseconds()}
	switch fn {
	case FnRate:
		res.Value, res.OK = db.Rate(id, window)
	case FnIncrease:
		res.Value, _, res.OK = db.Increase(id, window)
	case FnAvg:
		res.Value, res.OK = db.Avg(id, window)
	case FnLast:
		var p Point
		p, res.OK = db.Last(id)
		res.Value = p.V
	case FnQuantile:
		res.Q = q
		var hv HistogramValue
		hv, res.OK = db.HistogramDelta(id, window)
		if res.OK && hv.Count > 0 {
			res.Value = hv.Quantile(q)
		} else {
			res.OK = false
		}
	case FnCount:
		var hv HistogramValue
		hv, res.OK = db.HistogramDelta(id, window)
		res.Value = float64(hv.Count)
	case FnMean:
		var hv HistogramValue
		hv, res.OK = db.HistogramDelta(id, window)
		if res.OK && hv.Count > 0 {
			res.Value = hv.Mean()
		} else {
			res.OK = false
		}
	}
	return res
}

// Scraper periodically samples a snapshot source into a TSDB and, when an
// SLO engine is attached, evaluates it after every sample — one tick is
// one deterministic scrape-then-evaluate step, exposed directly as Tick
// for tests and benchmarks.
type Scraper struct {
	cfg  ScraperConfig
	done chan struct{}
	once sync.Once
}

// ScraperConfig wires a scraper.
type ScraperConfig struct {
	// DB receives the samples.
	DB *TSDB
	// Snapshot produces the state to sample (e.g. Registry.Snapshot or
	// Collector.Merged).
	Snapshot func() *Snapshot
	// SLO, when non-nil, is evaluated after every scrape.
	SLO *SLOEngine
	// Now substitutes the clock (tests/benchmarks); nil means time.Now.
	Now func() time.Time
}

// NewScraper builds a scraper without starting it (deterministic use:
// call Tick yourself).
func NewScraper(cfg ScraperConfig) *Scraper {
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	return &Scraper{cfg: cfg, done: make(chan struct{})}
}

// Tick performs one scrape-and-evaluate step at the scraper's current
// clock reading.
func (s *Scraper) Tick() {
	now := s.cfg.Now()
	s.cfg.DB.Observe(now, s.cfg.Snapshot())
	if s.cfg.SLO != nil {
		s.cfg.SLO.Evaluate(now)
	}
}

// StartScraper builds and starts a scraper ticking at the TSDB's step
// until Stop. One immediate tick runs before the ticker starts, so short
// runs still record history.
func StartScraper(cfg ScraperConfig) *Scraper {
	s := NewScraper(cfg)
	s.Tick()
	go func() {
		t := time.NewTicker(cfg.DB.Step())
		defer t.Stop()
		for {
			select {
			case <-s.done:
				return
			case <-t.C:
				s.Tick()
			}
		}
	}()
	return s
}

// Stop halts a started scraper. Safe to call more than once, and on a
// never-started scraper.
func (s *Scraper) Stop() {
	s.once.Do(func() { close(s.done) })
}

// ParseWindow parses a query window ("30s", "5m", "1h"), rejecting
// non-positive results.
func ParseWindow(s string) (time.Duration, error) {
	d, err := time.ParseDuration(s)
	if err != nil {
		return 0, fmt.Errorf("obs: bad window %q: %v", s, err)
	}
	if d <= 0 {
		return 0, fmt.Errorf("obs: window %q must be positive", s)
	}
	return d, nil
}
