package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"time"
)

// DossierPushPath is the endpoint fleet workers POST miss dossiers to
// (sweepd and obscollect both mount a DossierStore there, behind the same
// bearer auth as the snapshot push path).
const DossierPushPath = "/dossiers/push"

// DossierSourceHeader names the header carrying the pushing worker's
// identity on dossier pushes.
const DossierSourceHeader = "X-Rtopex-Dossier-Source"

// DossierStoreConfig bounds a DossierStore.
type DossierStoreConfig struct {
	// MaxDossiers caps the stored count (default 256; < 0 disables).
	MaxDossiers int
	// MaxBytes caps total stored bytes (default 32 MiB; < 0 disables).
	MaxBytes int64
	// MaxItemBytes rejects oversized single dossiers (default 4 MiB).
	MaxItemBytes int64
	// Logf, when non-nil, receives ingest log lines.
	Logf func(format string, args ...any)
	// Now substitutes the ingest clock (tests); nil means time.Now. The
	// ingest time stamps DossierMeta and drives DossierRefsSince, the SLO
	// engine's alert-window membership test.
	Now func() time.Time
}

// DossierMeta is the listing form of one stored dossier.
type DossierMeta struct {
	// ID is the store's own ingest sequence (the /dossiers/<id> key).
	ID int64 `json:"id"`
	// Source identifies the worker that shipped it.
	Source string `json:"source,omitempty"`
	// Label/Trigger/Seq are lifted from the dossier document for listing.
	Label   string `json:"label,omitempty"`
	Trigger string `json:"trigger,omitempty"`
	Seq     uint64 `json:"seq,omitempty"`
	Bytes   int    `json:"bytes"`
	// IngestMS is the store's ingest wall-clock time (Unix ms).
	IngestMS int64 `json:"ingest_ms"`
}

// DossierStore collects miss dossiers shipped from fleet workers. The obs
// package treats dossiers as opaque versioned JSON (internal/flight owns
// the schema; rtoptrace -dossier renders them), validating only that a
// push is a JSON object carrying a flight_version — so the fleet plane
// never needs to parse forensics it only transports. Oldest dossiers are
// evicted once either cap is exceeded, mirroring the worker-side spool.
type DossierStore struct {
	mu      sync.Mutex
	cfg     DossierStoreConfig
	items   []storedDossier // oldest first
	bytes   int64
	nextID  int64
	evicted int64
}

type storedDossier struct {
	meta DossierMeta
	raw  []byte
}

// NewDossierStore creates an empty store.
func NewDossierStore(cfg DossierStoreConfig) *DossierStore {
	if cfg.MaxDossiers == 0 {
		cfg.MaxDossiers = 256
	}
	if cfg.MaxBytes == 0 {
		cfg.MaxBytes = 32 << 20
	}
	if cfg.MaxItemBytes <= 0 {
		cfg.MaxItemBytes = 4 << 20
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	return &DossierStore{cfg: cfg, nextID: 1}
}

// Ingest validates and stores one dossier document.
func (s *DossierStore) Ingest(source string, raw []byte) error {
	if int64(len(raw)) > s.cfg.MaxItemBytes {
		return fmt.Errorf("obs: dossier too large (%d bytes > %d)", len(raw), s.cfg.MaxItemBytes)
	}
	// Transport-level validation only: a JSON object that declares a
	// flight_version. Schema versions are gated by the reader that actually
	// interprets the dossier.
	var probe struct {
		Version *int   `json:"flight_version"`
		Label   string `json:"label"`
		Trigger string `json:"trigger"`
		Seq     uint64 `json:"seq"`
	}
	if err := json.Unmarshal(raw, &probe); err != nil {
		return fmt.Errorf("obs: bad dossier: %v", err)
	}
	if probe.Version == nil || *probe.Version < 1 {
		return fmt.Errorf("obs: dossier missing flight_version")
	}
	cp := make([]byte, len(raw))
	copy(cp, raw)
	s.mu.Lock()
	meta := DossierMeta{
		ID:       s.nextID,
		Source:   source,
		Label:    probe.Label,
		Trigger:  probe.Trigger,
		Seq:      probe.Seq,
		Bytes:    len(cp),
		IngestMS: s.cfg.Now().UnixMilli(),
	}
	s.nextID++
	s.items = append(s.items, storedDossier{meta: meta, raw: cp})
	s.bytes += int64(len(cp))
	for len(s.items) > 1 &&
		((s.cfg.MaxDossiers > 0 && len(s.items) > s.cfg.MaxDossiers) ||
			(s.cfg.MaxBytes > 0 && s.bytes > s.cfg.MaxBytes)) {
		s.bytes -= int64(len(s.items[0].raw))
		s.items = s.items[1:]
		s.evicted++
	}
	logf := s.cfg.Logf
	s.mu.Unlock()
	if logf != nil {
		logf("obs: dossier %d from %s (%s, %d bytes)", meta.ID, source, probe.Trigger, len(cp))
	}
	return nil
}

// List returns the stored dossier metadata, oldest first.
func (s *DossierStore) List() []DossierMeta {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]DossierMeta, len(s.items))
	for i, it := range s.items {
		out[i] = it.meta
	}
	return out
}

// Get returns one stored dossier document by store ID.
func (s *DossierStore) Get(id int64) ([]byte, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, it := range s.items {
		if it.meta.ID == id {
			return it.raw, true
		}
	}
	return nil, false
}

// Len reports the stored dossier count.
func (s *DossierStore) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.items)
}

// DossierRefsSince implements DossierSource: stored dossiers ingested at
// or after since, oldest first, as alert cross-link refs. A fleet daemon's
// SLO engine links the dossiers its workers shipped inside the alert
// window.
func (s *DossierStore) DossierRefsSince(since time.Time) []DossierRef {
	cutoff := since.UnixMilli()
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []DossierRef
	for _, it := range s.items {
		if it.meta.IngestMS < cutoff {
			continue
		}
		out = append(out, DossierRef{
			ID:         strconv.FormatInt(it.meta.ID, 10),
			Source:     it.meta.Source,
			Label:      it.meta.Label,
			Trigger:    it.meta.Trigger,
			Seq:        it.meta.Seq,
			CapturedMS: it.meta.IngestMS,
		})
	}
	return out
}

// Evicted reports dossiers pushed out by the caps.
func (s *DossierStore) Evicted() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.evicted
}

// WriteDir flushes every stored dossier to dir (one file per dossier,
// "dossier-<id>-<source>.json"), for archival on daemon shutdown.
func (s *DossierStore) WriteDir(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	s.mu.Lock()
	items := make([]storedDossier, len(s.items))
	copy(items, s.items)
	s.mu.Unlock()
	for _, it := range items {
		src := sanitizeSource(it.meta.Source)
		name := fmt.Sprintf("dossier-%06d-%s.json", it.meta.ID, src)
		if err := os.WriteFile(filepath.Join(dir, name), it.raw, 0o644); err != nil {
			return err
		}
	}
	return nil
}

func sanitizeSource(src string) string {
	if src == "" {
		return "unknown"
	}
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '-', r == '.', r == '_':
			return r
		default:
			return '_'
		}
	}, src)
}

// Handler returns the store's HTTP surface:
//
//	POST /dossiers/push  ingest one dossier (source from the
//	                     X-Rtopex-Dossier-Source header)
//	GET  /dossiers       JSON metadata listing
//	GET  /dossiers/<id>  one raw dossier document
func (s *DossierStore) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc(DossierPushPath, func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "POST only", http.StatusMethodNotAllowed)
			return
		}
		raw, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.cfg.MaxItemBytes+1))
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		if err := s.Ingest(r.Header.Get(DossierSourceHeader), raw); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/dossiers", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(s.List())
	})
	mux.HandleFunc("/dossiers/", func(w http.ResponseWriter, r *http.Request) {
		id, err := strconv.ParseInt(strings.TrimPrefix(r.URL.Path, "/dossiers/"), 10, 64)
		if err != nil {
			http.Error(w, "bad dossier id", http.StatusBadRequest)
			return
		}
		raw, ok := s.Get(id)
		if !ok {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		_, _ = w.Write(raw)
	})
	return mux
}
