package obs

import (
	"math/rand"
	"reflect"
	"testing"
	"time"
)

// histValue looks up one histogram series in a snapshot by canonical id.
func histValue(snap *Snapshot, id string) (HistogramValue, bool) {
	for _, h := range snap.Histograms {
		if SeriesID(h.Name, h.Labels) == id {
			return h.Value, true
		}
	}
	return HistogramValue{}, false
}

// rawSample pairs a scrape time with the full snapshot taken then — the
// "raw registry snapshots" the property test recomputes answers from.
type rawSample struct {
	t    int64
	snap *Snapshot
}

// naiveWindow resolves the same [newest−window, newest] range the store
// uses, over a plain retained-sample slice instead of a ring.
func naiveWindow(raws []rawSample, window time.Duration) (k0, k1 int, ok bool) {
	if len(raws) == 0 {
		return 0, 0, false
	}
	k1 = len(raws) - 1
	cutoff := raws[k1].t - window.Milliseconds()
	k0 = -1
	for k := range raws {
		if raws[k].t >= cutoff {
			k0 = k
			break
		}
	}
	if k0 < 0 || k0 >= k1 {
		return 0, 0, false
	}
	return k0, k1, true
}

// naiveBucketSub is an independent (map-free, straight-line) reimplementation
// of windowed bucket subtraction for the property test.
func naiveBucketSub(newer, older []BucketCount) []BucketCount {
	oldCount := func(idx int) uint64 {
		for _, b := range older {
			if b.Index == idx {
				return b.Count
			}
		}
		return 0
	}
	var out []BucketCount
	for _, b := range newer {
		o := oldCount(b.Index)
		if b.Count > o {
			out = append(out, BucketCount{Index: b.Index, Count: b.Count - o})
		}
	}
	return out
}

// naiveHistSub independently recomputes the windowed histogram delta,
// including the tightened Min/Max support bounds.
func naiveHistSub(newer, older HistogramValue) HistogramValue {
	var d HistogramValue
	sub := func(a, b uint64) uint64 {
		if a < b {
			return 0
		}
		return a - b
	}
	d.Count = sub(newer.Count, older.Count)
	d.Zero = sub(newer.Zero, older.Zero)
	d.NonFinite = sub(newer.NonFinite, older.NonFinite)
	d.Sum = newer.Sum - older.Sum
	d.Pos = naiveBucketSub(newer.Pos, older.Pos)
	d.Neg = naiveBucketSub(newer.Neg, older.Neg)
	if d.Count == 0 {
		d.Sum = 0
		return d
	}
	first := true
	grow := func(lo, hi float64) {
		if first {
			d.Min, d.Max, first = lo, hi, false
			return
		}
		if lo < d.Min {
			d.Min = lo
		}
		if hi > d.Max {
			d.Max = hi
		}
	}
	for _, b := range d.Neg {
		lo, hi := bucketBounds(b.Index)
		grow(-hi, -lo)
	}
	if d.Zero > 0 {
		grow(0, 0)
	}
	for _, b := range d.Pos {
		lo, hi := bucketBounds(b.Index)
		grow(lo, hi)
	}
	return d
}

// TestTSDBMatchesRawSnapshots is the history plane's exactness property:
// every windowed answer the store gives — counter increase/rate, gauge
// avg/last, histogram-delta fields and quantiles — must equal the answer
// recomputed directly from the retained raw registry snapshots, at every
// step boundary of a seeded random run.
func TestTSDBMatchesRawSnapshots(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	cfg := TSDBConfig{Step: time.Second, Retention: 30 * time.Second, HistogramRetention: 10 * time.Second}
	db := NewTSDB(cfg)

	reg := NewRegistry()
	reqs := reg.Counter("req_total")
	miss := reg.Counter("miss_total", L("core", "0"))
	load := reg.Gauge("load")
	lat := reg.Histogram("lat_ms")

	counterIDs := []string{"req_total", SeriesID("miss_total", []Label{L("core", "0")})}
	const histID = "lat_ms"
	windows := []time.Duration{3 * time.Second, 9 * time.Second, 30 * time.Second, time.Hour}
	quantiles := []float64{0, 0.25, 0.5, 0.9, 0.99, 1}

	scalarCap := cfg.points(cfg.Retention)
	histCap := cfg.points(cfg.HistogramRetention)

	t0 := time.UnixMilli(1_700_000_000_000)
	var raws []rawSample
	for step := 0; step < 100; step++ {
		reqs.Add(int64(rng.Intn(50)))
		miss.Add(int64(rng.Intn(5)))
		load.Set(rng.Float64() * 64)
		for i, n := 0, rng.Intn(4); i < n; i++ {
			switch rng.Intn(4) {
			case 0:
				lat.Observe(0)
			case 1:
				lat.Observe(-rng.Float64() * 10)
			default:
				lat.Observe(rng.Float64() * 100)
			}
		}
		now := t0.Add(time.Duration(step) * cfg.Step)
		snap := reg.Snapshot()
		db.Observe(now, snap)
		raws = append(raws, rawSample{t: now.UnixMilli(), snap: snap})

		// The naive view retains exactly what the rings can hold.
		scalars := raws
		if len(scalars) > scalarCap {
			scalars = scalars[len(scalars)-scalarCap:]
		}
		hists := raws
		if len(hists) > histCap {
			hists = hists[len(hists)-histCap:]
		}

		for _, w := range windows {
			// Counters: increase and rate.
			for _, id := range counterIDs {
				k0, k1, wantOK := naiveWindow(scalars, w)
				delta, seconds, ok := db.Increase(id, w)
				if ok != wantOK {
					t.Fatalf("step %d %s window %s: Increase ok=%v, want %v", step, id, w, ok, wantOK)
				}
				if !ok {
					continue
				}
				v0, _ := counterByID(scalars[k0].snap, id)
				v1, _ := counterByID(scalars[k1].snap, id)
				wantDelta := float64(v1 - v0)
				wantSeconds := float64(scalars[k1].t-scalars[k0].t) / 1e3
				if delta != wantDelta || seconds != wantSeconds {
					t.Fatalf("step %d %s window %s: Increase = (%v, %v), want (%v, %v)",
						step, id, w, delta, seconds, wantDelta, wantSeconds)
				}
				if rate, ok := db.Rate(id, w); !ok || rate != wantDelta/wantSeconds {
					t.Fatalf("step %d %s window %s: Rate = %v (ok=%v), want %v",
						step, id, w, rate, ok, wantDelta/wantSeconds)
				}
			}

			// Gauge: windowed average (single-sample windows are valid).
			{
				k1 := len(scalars) - 1
				cutoff := scalars[k1].t - w.Milliseconds()
				sum, n := 0.0, 0
				for _, r := range scalars {
					if r.t >= cutoff {
						v, _ := r.snap.GaugeValue("load")
						sum += v
						n++
					}
				}
				avg, ok := db.Avg("load", w)
				if !ok || avg != sum/float64(n) {
					t.Fatalf("step %d load window %s: Avg = %v (ok=%v), want %v", step, w, avg, ok, sum/float64(n))
				}
			}

			// Histogram: delta fields and quantiles.
			{
				k0, k1, wantOK := naiveWindow(hists, w)
				got, ok := db.HistogramDelta(histID, w)
				if ok != wantOK {
					t.Fatalf("step %d hist window %s: ok=%v, want %v", step, w, ok, wantOK)
				}
				if !ok {
					continue
				}
				older, _ := histValue(hists[k0].snap, histID)
				newer, _ := histValue(hists[k1].snap, histID)
				want := naiveHistSub(newer, older)
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("step %d hist window %s:\n got  %+v\n want %+v", step, w, got, want)
				}
				if want.Count > 0 {
					for _, q := range quantiles {
						if g, w2 := got.Quantile(q), want.Quantile(q); g != w2 {
							t.Fatalf("step %d hist window %s q=%v: %v != %v", step, w, q, g, w2)
						}
					}
				}
			}
		}

		// Gauge last always mirrors the newest snapshot.
		if p, ok := db.Last("load"); !ok {
			t.Fatalf("step %d: Last(load) missing", step)
		} else if v, _ := snap.GaugeValue("load"); p.V != v || p.T != now.UnixMilli() {
			t.Fatalf("step %d: Last(load) = %+v, want (%d, %v)", step, p, now.UnixMilli(), v)
		}
	}

	if db.Scrapes() != 100 {
		t.Fatalf("Scrapes = %d, want 100", db.Scrapes())
	}
}

// counterByID looks up one counter series in a snapshot by canonical id
// (the production accessor takes name+labels).
func counterByID(s *Snapshot, id string) (int64, bool) {
	for _, c := range s.Counters {
		if SeriesID(c.Name, c.Labels) == id {
			return c.Value, true
		}
	}
	return 0, false
}

// TestTSDBRingEviction: a full ring drops its oldest samples; capacity and
// the advancing first-timestamp prove fixed memory.
func TestTSDBRingEviction(t *testing.T) {
	db := NewTSDB(TSDBConfig{Step: time.Second, Retention: 5 * time.Second})
	reg := NewRegistry()
	c := reg.Counter("n_total")
	t0 := time.UnixMilli(0)
	for i := 0; i < 20; i++ {
		c.Add(1)
		db.Observe(t0.Add(time.Duration(i)*time.Second), reg.Snapshot())
	}
	infos := db.Series()
	if len(infos) != 1 {
		t.Fatalf("Series = %+v, want 1 entry", infos)
	}
	got := infos[0]
	if got.Points != 5 || got.FirstMS != 15_000 || got.LastMS != 19_000 || got.Last != 20 {
		t.Fatalf("Series[0] = %+v, want 5 points spanning 15000..19000 ending at 20", got)
	}
	// A query window larger than retention answers over what is retained.
	if delta, _, ok := db.Increase("n_total", time.Hour); !ok || delta != 4 {
		t.Fatalf("Increase over retention = %v (ok=%v), want 4", delta, ok)
	}
}

// TestTSDBCounterReset: a decrease (source restart / eviction) clamps the
// increase to the newest value, never a negative delta.
func TestTSDBCounterReset(t *testing.T) {
	db := NewTSDB(TSDBConfig{Step: time.Second, Retention: time.Minute})
	snapAt := func(v int64) *Snapshot {
		return &Snapshot{Counters: []CounterValue{{Name: "n_total", Value: v}}}
	}
	db.Observe(time.UnixMilli(0), snapAt(100))
	db.Observe(time.UnixMilli(1000), snapAt(150))
	db.Observe(time.UnixMilli(2000), snapAt(7)) // reset
	delta, seconds, ok := db.Increase("n_total", time.Minute)
	if !ok || delta != 7 || seconds != 2 {
		t.Fatalf("Increase after reset = (%v, %v, %v), want (7, 2, true)", delta, seconds, ok)
	}
}

// TestTSDBOutOfOrderDropped: a sample older than the newest stored one is
// ignored (the scraper guarantees monotone time; replay safety requires
// dropping violations, not reordering).
func TestTSDBOutOfOrderDropped(t *testing.T) {
	db := NewTSDB(TSDBConfig{})
	snap := &Snapshot{Gauges: []GaugeValue{{Name: "g", Value: 1}}}
	db.Observe(time.UnixMilli(5000), snap)
	db.Observe(time.UnixMilli(1000), &Snapshot{Gauges: []GaugeValue{{Name: "g", Value: 9}}})
	if p, ok := db.Last("g"); !ok || p.T != 5000 || p.V != 1 {
		t.Fatalf("Last = %+v (ok=%v), want the original sample", p, ok)
	}
}

// TestTSDBKindChange: a series that changes kind keeps its original
// timeline; the conflicting sample is dropped.
func TestTSDBKindChange(t *testing.T) {
	db := NewTSDB(TSDBConfig{})
	db.Observe(time.UnixMilli(0), &Snapshot{Counters: []CounterValue{{Name: "x", Value: 1}}})
	db.Observe(time.UnixMilli(1000), &Snapshot{Gauges: []GaugeValue{{Name: "x", Value: 2}}})
	infos := db.Series()
	if len(infos) != 1 || infos[0].Kind != "counter" || infos[0].Points != 1 {
		t.Fatalf("Series = %+v, want one 1-point counter", infos)
	}
}

// TestTSDBRatioPoints: per-step ratios align numerator and denominator by
// timestamp and skip steps where the denominator did not move.
func TestTSDBRatioPoints(t *testing.T) {
	db := NewTSDB(TSDBConfig{Step: time.Second, Retention: time.Minute})
	snapAt := func(errs, total int64) *Snapshot {
		return &Snapshot{Counters: []CounterValue{
			{Name: "errs_total", Value: errs},
			{Name: "total_total", Value: total},
		}}
	}
	db.Observe(time.UnixMilli(0), snapAt(0, 0))
	db.Observe(time.UnixMilli(1000), snapAt(1, 10))  // ratio 0.1
	db.Observe(time.UnixMilli(2000), snapAt(1, 10))  // denominator stalled: skipped
	db.Observe(time.UnixMilli(3000), snapAt(6, 110)) // ratio 5/100
	pts := db.RatioPoints("errs_total", "total_total", time.Minute)
	want := []Point{{T: 1000, V: 0.1}, {T: 3000, V: 0.05}}
	if !reflect.DeepEqual(pts, want) {
		t.Fatalf("RatioPoints = %+v, want %+v", pts, want)
	}
}

// TestScraperTickDeterministic: Tick samples at the injected clock and
// evaluates the attached SLO engine; no background goroutine involved.
func TestScraperTickDeterministic(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("n_total")
	db := NewTSDB(TSDBConfig{Step: time.Second})
	now := time.UnixMilli(0)
	s := NewScraper(ScraperConfig{
		DB:       db,
		Snapshot: reg.Snapshot,
		Now:      func() time.Time { return now },
	})
	for i := 0; i < 3; i++ {
		c.Add(5)
		s.Tick()
		now = now.Add(time.Second)
	}
	if db.Scrapes() != 3 {
		t.Fatalf("Scrapes = %d, want 3", db.Scrapes())
	}
	if delta, _, ok := db.Increase("n_total", time.Minute); !ok || delta != 10 {
		t.Fatalf("Increase = %v (ok=%v), want 10 over the 3 ticks", delta, ok)
	}
	s.Stop()
	s.Stop() // idempotent, including on a never-started scraper
}

// TestQueryDispatch: Query routes each fn to the right underlying method
// and answers OK=false (never an error) on mismatches.
func TestQueryDispatch(t *testing.T) {
	db := NewTSDB(TSDBConfig{Step: time.Second})
	reg := NewRegistry()
	c := reg.Counter("n_total")
	g := reg.Gauge("g")
	h := reg.Histogram("h")
	for i := 0; i < 5; i++ {
		c.Add(10)
		g.Set(float64(i))
		h.Observe(float64(i + 1))
		db.Observe(time.UnixMilli(int64(i)*1000), reg.Snapshot())
	}
	w := time.Minute
	if r := db.Query("n_total", FnRate, w, 0); !r.OK || r.Value != 10 {
		t.Fatalf("rate = %+v, want 10/s", r)
	}
	if r := db.Query("n_total", FnIncrease, w, 0); !r.OK || r.Value != 40 {
		t.Fatalf("increase = %+v, want 40", r)
	}
	if r := db.Query("g", FnAvg, w, 0); !r.OK || r.Value != 2 {
		t.Fatalf("avg = %+v, want 2", r)
	}
	if r := db.Query("g", FnLast, w, 0); !r.OK || r.Value != 4 {
		t.Fatalf("last = %+v, want 4", r)
	}
	if r := db.Query("h", FnCount, w, 0); !r.OK || r.Value != 4 {
		t.Fatalf("count = %+v, want 4 in-window observations", r)
	}
	if r := db.Query("h", FnQuantile, w, 0.5); !r.OK || r.Value <= 0 {
		t.Fatalf("quantile = %+v, want a positive median", r)
	}
	if r := db.Query("h", FnMean, w, 0); !r.OK || r.Value <= 0 {
		t.Fatalf("mean = %+v, want positive", r)
	}
	// Mismatches and unknowns: OK=false.
	for _, bad := range []QueryResult{
		db.Query("g", FnRate, w, 0),                 // gauge is not a counter
		db.Query("n_total", FnAvg, w, 0),            // counter is not a gauge
		db.Query("h", FnRate, w, 0),                 // histogram is not a counter
		db.Query("absent", FnRate, w, 0),            // unknown series
		db.Query("n_total", QueryFn("bogus"), w, 0), // unknown fn
	} {
		if bad.OK {
			t.Fatalf("query %+v should not be OK", bad)
		}
	}
}

// TestParseWindow: accepted forms and rejections.
func TestParseWindow(t *testing.T) {
	if d, err := ParseWindow("5m"); err != nil || d != 5*time.Minute {
		t.Fatalf("ParseWindow(5m) = %v, %v", d, err)
	}
	for _, bad := range []string{"", "x", "-3s", "0s"} {
		if _, err := ParseWindow(bad); err == nil {
			t.Fatalf("ParseWindow(%q) should fail", bad)
		}
	}
}
