package obs

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func TestBearerAuth(t *testing.T) {
	okHandler := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
	})
	srv := httptest.NewServer(BearerAuth("s3cret", okHandler))
	defer srv.Close()

	status := func(authorization string) int {
		req, err := http.NewRequest(http.MethodGet, srv.URL, nil)
		if err != nil {
			t.Fatal(err)
		}
		if authorization != "" {
			req.Header.Set("Authorization", authorization)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}

	if got := status("Bearer s3cret"); got != http.StatusOK {
		t.Fatalf("right token: HTTP %d", got)
	}
	for name, header := range map[string]string{
		"no header":    "",
		"wrong token":  "Bearer nope",
		"wrong scheme": "Basic s3cret",
		"bare token":   "s3cret",
		"prefix match": "Bearer s3cre",
		"superstring":  "Bearer s3crets",
	} {
		if got := status(header); got != http.StatusUnauthorized {
			t.Fatalf("%s: HTTP %d, want 401", name, got)
		}
	}
}

func TestBearerAuthEmptyTokenIsOpen(t *testing.T) {
	h := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {})
	if got := BearerAuth("", h); got == nil {
		t.Fatal("nil handler")
	} else if _, ok := got.(http.HandlerFunc); !ok {
		t.Fatalf("empty token should return the handler unchanged, got %T", got)
	}
}

func TestAuthHeader(t *testing.T) {
	req, _ := http.NewRequest(http.MethodPost, "http://x/", nil)
	AuthHeader(req, "")
	if got := req.Header.Get("Authorization"); got != "" {
		t.Fatalf("empty token set header %q", got)
	}
	AuthHeader(req, "tok")
	if got := req.Header.Get("Authorization"); got != "Bearer tok" {
		t.Fatalf("header %q", got)
	}
}

func TestAuthTokenFromEnv(t *testing.T) {
	t.Setenv(AuthEnvVar, "from-env")
	if got := AuthTokenFromEnv(""); got != "from-env" {
		t.Fatalf("env fallback: %q", got)
	}
	if got := AuthTokenFromEnv("from-flag"); got != "from-flag" {
		t.Fatalf("flag should win: %q", got)
	}
	t.Setenv(AuthEnvVar, "")
	if got := AuthTokenFromEnv(""); got != "" {
		t.Fatalf("no token anywhere: %q", got)
	}
}

func TestRetryPolicyBackoffSchedule(t *testing.T) {
	var slept []time.Duration
	p := RetryPolicy{
		Attempts: 5,
		Backoff:  100 * time.Millisecond,
		Cap:      300 * time.Millisecond,
		Sleep:    func(d time.Duration) { slept = append(slept, d) },
	}
	calls := 0
	err := p.Do("op", func() error { calls++; return errTransient })
	if err == nil || !strings.Contains(err.Error(), "op failed after 5 attempt(s)") {
		t.Fatalf("err %v", err)
	}
	if calls != 5 {
		t.Fatalf("%d calls, want 5", calls)
	}
	// Doubling from 100ms, capped at 300ms, no sleep after the last try.
	want := []time.Duration{100, 200, 300, 300}
	if len(slept) != len(want) {
		t.Fatalf("slept %v", slept)
	}
	for i, d := range want {
		if slept[i] != d*time.Millisecond {
			t.Fatalf("sleep %d = %s, want %s", i, slept[i], d*time.Millisecond)
		}
	}
}

var errTransient = &transientErr{}

type transientErr struct{}

func (*transientErr) Error() string { return "transient" }

func TestRetryPolicyPermanentStopsImmediately(t *testing.T) {
	calls := 0
	p := RetryPolicy{Attempts: 5, Sleep: func(time.Duration) { t.Fatal("slept on a permanent error") }}
	err := p.Do("op", func() error { calls++; return Permanent(errTransient) })
	if calls != 1 {
		t.Fatalf("%d calls, want 1", calls)
	}
	// The permanent marker is stripped before returning.
	if err != errTransient {
		t.Fatalf("err %v, want the unwrapped original", err)
	}
	if IsPermanent(err) {
		t.Fatal("returned error still carries the permanent marker")
	}
	if !IsPermanent(Permanent(errTransient)) {
		t.Fatal("IsPermanent misses a wrapped error")
	}
	if Permanent(nil) != nil {
		t.Fatal("Permanent(nil) != nil")
	}
}

func TestRetryPolicyEventualSuccess(t *testing.T) {
	calls := 0
	p := RetryPolicy{Attempts: 4, Sleep: func(time.Duration) {}}
	err := p.Do("op", func() error {
		calls++
		if calls < 3 {
			return errTransient
		}
		return nil
	})
	if err != nil || calls != 3 {
		t.Fatalf("err %v after %d calls", err, calls)
	}
}
