package obs

import (
	"flag"
	"fmt"
	"io"
	"log/slog"
	"os"
	"strings"
)

// Structured logging shared by the fleet daemons (sweepd, sweepworker,
// obscollect): one flag surface, one handler construction, so fleet logs
// are machine-parseable alongside miss dossiers. The default stays the
// slog text format — scripts (fleet-smoke.sh) grep daemon logs, and the
// text handler keeps `key=value` lines stable for them — while
// `-log-format json` switches the same records to JSON lines.

// LogConfig carries the shared -log-format/-log-level flag values.
type LogConfig struct {
	Format string
	Level  string
}

// LogFlags registers -log-format and -log-level on fs (the global flag set
// when nil) and returns the config the flags fill at Parse time.
func LogFlags(fs *flag.FlagSet) *LogConfig {
	if fs == nil {
		fs = flag.CommandLine
	}
	c := &LogConfig{}
	fs.StringVar(&c.Format, "log-format", "text", "log output format: text or json")
	fs.StringVar(&c.Level, "log-level", "info", "minimum log level: debug, info, warn, error")
	return c
}

// Logger builds the component's structured logger from the parsed flags,
// writing to w (stderr when nil). Every record carries a "component"
// attribute so interleaved fleet logs stay attributable.
func (c *LogConfig) Logger(component string, w io.Writer) (*slog.Logger, error) {
	if w == nil {
		w = os.Stderr
	}
	var level slog.Level
	switch strings.ToLower(c.Level) {
	case "", "info":
		level = slog.LevelInfo
	case "debug":
		level = slog.LevelDebug
	case "warn", "warning":
		level = slog.LevelWarn
	case "error":
		level = slog.LevelError
	default:
		return nil, fmt.Errorf("obs: unknown log level %q (debug, info, warn, error)", c.Level)
	}
	opts := &slog.HandlerOptions{Level: level}
	var h slog.Handler
	switch strings.ToLower(c.Format) {
	case "", "text":
		h = slog.NewTextHandler(w, opts)
	case "json":
		h = slog.NewJSONHandler(w, opts)
	default:
		return nil, fmt.Errorf("obs: unknown log format %q (text, json)", c.Format)
	}
	l := slog.New(h)
	if component != "" {
		l = l.With("component", component)
	}
	return l, nil
}

// Printf adapts a structured logger to the `logf(format, args...)` plumbing
// the internal packages (sweep, fleet, collector) already take: each line
// becomes one info-level record with the formatted text as the message.
func Printf(l *slog.Logger) func(format string, args ...any) {
	if l == nil {
		return nil
	}
	return func(format string, args ...any) {
		l.Info(fmt.Sprintf(format, args...))
	}
}
