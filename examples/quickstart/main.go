// Quickstart: push one LTE uplink subframe through the full PHY — encode a
// transport block, add channel noise, and decode it with the task pipeline
// that RT-OPEX schedules.
package main

import (
	"fmt"
	"log"

	"rtopex"
)

func main() {
	cfg := rtopex.PHYConfig{
		Bandwidth: rtopex.BW10MHz, // 50 PRBs, 1024-point FFT, 15.36 Msps
		MCS:       27,             // 64-QAM, 31 704-bit transport block
		Antennas:  2,
		RNTI:      0x1234,
		CellID:    42,
	}

	tx, err := rtopex.NewTransmitter(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("transport block: %d bits in %d turbo code blocks\n", tx.TBS(), tx.CodeBlocks())

	// A recognizable payload: alternating bits.
	payload := make([]byte, tx.TBS())
	for i := range payload {
		payload[i] = byte(i & 1)
	}
	wave, err := tx.Transmit(payload)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("waveform: %d complex samples (1 ms subframe)\n", len(wave))

	// 30 dB AWGN with a random flat gain per antenna — the paper's
	// evaluation channel.
	ch, err := rtopex.NewChannel(30, cfg.Antennas, 7)
	if err != nil {
		log.Fatal(err)
	}
	iq, _ := ch.Apply(wave)

	rx, err := rtopex.NewReceiver(cfg)
	if err != nil {
		log.Fatal(err)
	}

	// The receive chain is a staged pipeline: each stage's subtasks are
	// independent — exactly what RT-OPEX migrates to idle cores.
	stages, err := rx.Pipeline(iq, ch.N0())
	if err != nil {
		log.Fatal(err)
	}
	for _, st := range stages {
		fmt.Printf("stage %-7s %2d independent subtasks\n", st.Name, len(st.Subtasks))
		for _, subtask := range st.Subtasks {
			subtask()
		}
	}
	res := rx.Result()

	fmt.Printf("decode: ok=%v turboIterations=%d\n", res.OK, res.Iterations)
	if !res.OK {
		log.Fatal("decode failed — unexpected at 30 dB")
	}
	errs := 0
	for i := range payload {
		if res.Payload[i] != payload[i] {
			errs++
		}
	}
	fmt.Printf("payload bit errors: %d/%d\n", errs, len(payload))
}
