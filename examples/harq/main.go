// harq demonstrates the LTE hybrid-ARQ loop behind the paper's 3 ms
// ACK/NACK deadline: a transport block that fails its first decode is
// NACKed and retransmitted at the next redundancy version; the receiver
// combines soft bits across transmissions until the CRC passes.
package main

import (
	"fmt"
	"log"

	"rtopex"
	"rtopex/internal/bits"
	"rtopex/internal/stats"
)

func main() {
	cfg := rtopex.PHYConfig{
		Bandwidth: rtopex.BW10MHz,
		MCS:       17, // 16-QAM, code rate ≈ 0.64
		Antennas:  2,
		RNTI:      0x0042,
		CellID:    9,
	}
	// An SNR below the single-shot threshold for this MCS: the first
	// transmission should NACK, and incremental redundancy should close
	// the link within the 4-version cycle.
	const snrDB = 4.5

	tx, err := rtopex.NewTransmitter(cfg)
	if err != nil {
		log.Fatal(err)
	}
	r := stats.NewRNG(7)
	payload := make([]byte, tx.TBS())
	bits.RandomBits(payload, r.Uint64)

	hrx, err := rtopex.NewHARQReceiver(cfg)
	if err != nil {
		log.Fatal(err)
	}
	ch, err := rtopex.NewChannel(snrDB, cfg.Antennas, 8)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("transport block: %d bits, MCS %d at %.1f dB\n\n", tx.TBS(), cfg.MCS, snrDB)
	for n := 0; n < len(rtopex.HARQRVSequence); n++ {
		rv := rtopex.HARQRVSequence[n]
		wave, err := tx.TransmitRV(payload, rv)
		if err != nil {
			log.Fatal(err)
		}
		iq, _ := ch.Apply(wave)
		res, err := hrx.Receive(iq, ch.N0(), rv)
		if err != nil {
			log.Fatal(err)
		}
		verdict := "NACK"
		if res.OK {
			verdict = "ACK"
		}
		fmt.Printf("tx %d (rv=%d): %s  turboIterations=%d\n", n+1, rv, verdict, res.Iterations)
		if res.OK {
			if bits.HammingDistance(res.Payload, payload) != 0 {
				log.Fatal("CRC passed on a corrupted payload — impossible")
			}
			fmt.Printf("\ndecoded after %d transmission(s): each retransmission added fresh\n", hrx.Transmissions)
			fmt.Println("parity from a different circular-buffer offset (incremental redundancy),")
			fmt.Println("lowering the effective code rate until the decoder converged.")
			return
		}
	}
	fmt.Println("\nlink did not close within one rv cycle — lower the MCS or raise the SNR")
}
