// cransim reproduces the paper's core comparison on one C-RAN compute node:
// 4 basestations with realistic load traces, 8 cores, and a 500 µs one-way
// transport delay, scheduled by partitioned, global, and RT-OPEX.
package main

import (
	"fmt"
	"log"

	"rtopex"
)

func main() {
	const (
		rtt2      = 500.0 // one-way transport latency (µs)
		subframes = 30000 // 30 s of LTE uplink per basestation
		cores     = 8
	)

	w, err := rtopex.BuildWorkload(rtopex.WorkloadConfig{
		Basestations:   4,
		Subframes:      subframes,
		Antennas:       2,
		Bandwidth:      rtopex.BW10MHz,
		SNRdB:          30,
		Lm:             4,
		Params:         rtopex.PaperGPP,
		Jitter:         rtopex.DefaultJitter,
		IterLaw:        rtopex.DefaultIterationLaw,
		Profiles:       rtopex.DefaultTraceProfiles,
		FixedMCS:       -1,
		Transport:      rtopex.FixedTransport{OneWay: rtt2},
		ExpectedRTT2US: rtt2,
		Seed:           2016,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("C-RAN node: 4 basestations × %d subframes, %d cores, RTT/2 = %.0f µs\n\n",
		subframes, cores, rtt2)
	fmt.Printf("%-14s %10s %10s %8s %8s\n", "scheduler", "missRate", "misses", "dropped", "late")

	schedulers := []rtopex.Scheduler{
		rtopex.NewPartitioned(2),
		rtopex.NewGlobal(),
		rtopex.NewRTOPEX(2),
	}
	var part, rt *rtopex.Metrics
	for _, s := range schedulers {
		m, err := rtopex.Simulate(w, s, cores)
		if err != nil {
			log.Fatal(err)
		}
		dropped, late := 0, 0
		for _, b := range m.PerBS {
			dropped += b.Dropped
			late += b.Late
		}
		fmt.Printf("%-14s %10.2e %10d %8d %8d\n", m.Scheduler, m.MissRate(), m.Misses(), dropped, late)
		switch s.(type) {
		case *rtopex.Partitioned:
			part = m
		case *rtopex.RTOPEX:
			rt = m
		}
	}

	fmt.Printf("\nRT-OPEX migration activity:\n")
	fmt.Printf("  FFT subtasks migrated:    %d/%d (%.1f%%)\n",
		rt.FFTSubtasksMigrated, rt.FFTSubtasksTotal, 100*rt.MigratedFFTFraction())
	fmt.Printf("  decode subtasks migrated: %d/%d (%.1f%%)\n",
		rt.DecodeSubtasksMigrated, rt.DecodeSubtasksTotal, 100*rt.MigratedDecodeFraction())
	fmt.Printf("  recoveries: %d, preemptions: %d\n", rt.Recoveries, rt.Preemptions)

	if part.MissRate() > 0 && rt.MissRate() > 0 {
		fmt.Printf("\nRT-OPEX improves the deadline-miss rate %.0f× over partitioned.\n",
			part.MissRate()/rt.MissRate())
	}
}
