// tracereplay generates a cellular load trace file, reads it back, and
// replays it through the C-RAN simulation with a jittery (non-fixed)
// transport path — the workflow an operator would use to provision a
// compute node against captured traffic.
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"rtopex"
	"rtopex/internal/sched"
	"rtopex/internal/trace"
	"rtopex/internal/transport"
)

func main() {
	dir, err := os.MkdirTemp("", "rtopex-trace")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "traces.csv")

	// 1. Capture: generate 20 s of load for four cells and persist it.
	const subframes = 20000
	names := make([]string, len(trace.DefaultProfiles))
	traces := make([]trace.Trace, len(trace.DefaultProfiles))
	for i, p := range trace.DefaultProfiles {
		names[i] = p.Name
		traces[i] = trace.NewGenerator(p, uint64(100+i)).Generate(subframes)
	}
	f, err := os.Create(path)
	if err != nil {
		log.Fatal(err)
	}
	if err := trace.Write(f, names, traces); err != nil {
		log.Fatal(err)
	}
	f.Close()
	fmt.Printf("wrote %s (%d subframes × %d cells)\n", path, subframes, len(names))

	// 2. Reload: parse the file as an operator would a real capture.
	f, err = os.Open(path)
	if err != nil {
		log.Fatal(err)
	}
	gotNames, gotTraces, err := trace.Read(f)
	f.Close()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("reloaded cells: %v\n\n", gotNames)

	// 3. Replay under a realistic transport: 20 km fronthaul plus a
	// 10 GbE cloud segment with a long latency tail (Fig. 6), instead of
	// the fixed delays of the main evaluation.
	path2 := transport.Path{
		Fronthaul: transport.Fronthaul{DistanceKm: 20, SwitchUS: 10},
		Cloud:     transport.NewCloud(10),
	}
	expected := path2.Fronthaul.OneWayUS() + path2.Cloud.Mean()
	fmt.Printf("transport: expected RTT/2 = %.0f µs with a lognormal tail\n\n", expected)

	w, err := rtopex.BuildWorkload(rtopex.WorkloadConfig{
		Basestations:   len(gotNames),
		Subframes:      subframes,
		Antennas:       2,
		Bandwidth:      rtopex.BW10MHz,
		SNRdB:          30,
		Lm:             4,
		Params:         rtopex.PaperGPP,
		Jitter:         rtopex.DefaultJitter,
		IterLaw:        rtopex.DefaultIterationLaw,
		Profiles:       profilesFromTraces(gotNames),
		FixedMCS:       -1,
		Transport:      path2,
		ExpectedRTT2US: expected,
		Seed:           9,
	})
	if err != nil {
		log.Fatal(err)
	}
	// Replace the generated loads with the file's loads so the replay is
	// exactly the captured traffic.
	if err := overrideLoads(w, gotTraces); err != nil {
		log.Fatal(err)
	}

	for _, s := range []rtopex.Scheduler{rtopex.NewPartitioned(2), rtopex.NewRTOPEX(2)} {
		m, err := rtopex.Simulate(w, s, 8)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-14s overall miss rate %.2e\n", m.Scheduler, m.MissRate())
		for i, b := range m.PerBS {
			fmt.Printf("   %-4s jobs=%d ack=%d dropped=%d late=%d (miss %.2e)\n",
				gotNames[i], b.Jobs, b.ACK, b.Dropped, b.Late, b.MissRate())
		}
	}
}

// profilesFromTraces supplies placeholder profiles (the loads are replaced
// by the captured trace below, but BuildWorkload validates profile count).
func profilesFromTraces(names []string) []rtopex.TraceProfile {
	ps := make([]rtopex.TraceProfile, len(names))
	for i := range ps {
		ps[i] = trace.DefaultProfiles[i%len(trace.DefaultProfiles)]
	}
	return ps
}

// overrideLoads rebuilds each job's MCS-derived fields from a trace.
func overrideLoads(w *rtopex.Workload, traces []trace.Trace) error {
	return sched.OverrideLoads(w, traces)
}
