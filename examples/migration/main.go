// migration dissects RT-OPEX's Algorithm 1: given a decode task's subtasks
// and the free windows of idle cores, how many subtasks move where, and
// what does that do to the completion time?
package main

import (
	"fmt"

	"rtopex/internal/lte"
	"rtopex/internal/model"
	"rtopex/internal/sched"
)

func main() {
	// The paper's running example: an MCS-27 subframe (6 turbo code
	// blocks) on a 2-antenna basestation, decoded with L = 3 iterations.
	d, err := lte.SubcarrierLoad(27, lte.BW10MHz)
	if err != nil {
		panic(err)
	}
	tasks := model.PaperGPP.Tasks(2, 6, d, 3)
	const (
		blocks = 6
		delta  = 20.0 // measured migration overhead (µs)
	)
	tp := tasks.Decode / blocks

	fmt.Printf("decode task: %.0f µs serial = %d code blocks × %.0f µs\n",
		tasks.Decode, blocks, tp)
	fmt.Printf("migration overhead δ = %.0f µs\n\n", delta)

	scenarios := []struct {
		name string
		free []float64
	}{
		{"no idle cores", nil},
		{"one core, wide gap (900 µs)", []float64{900}},
		{"one core, narrow gap (250 µs)", []float64{250}},
		{"two cores, wide gaps", []float64{900, 900}},
		{"three cores, mixed gaps", []float64{400, 900, 150}},
		{"gap smaller than δ", []float64{15}},
	}

	fmt.Printf("%-32s %-12s %10s %10s %9s\n", "scenario", "allocation", "local_us", "task_us", "speedup")
	for _, sc := range scenarios {
		counts := sched.Algorithm1(blocks, tp, delta, false, false, sc.free)
		local := blocks
		longest := 0.0
		alloc := "-"
		for _, n := range counts {
			local -= n
			if n > 0 {
				if end := delta + float64(n)*tp; end > longest {
					longest = end
				}
			}
		}
		if len(counts) > 0 {
			alloc = fmt.Sprint(counts)
		}
		localTime := float64(local) * tp
		taskTime := localTime
		if longest > taskTime {
			taskTime = longest
		}
		fmt.Printf("%-32s %-12s %10.0f %10.0f %8.2fx\n",
			sc.name, alloc, localTime, taskTime, tasks.Decode/taskTime)
	}

	fmt.Println("\nAlgorithm 1's requirements in action:")
	fmt.Println("  R1 keeps each batch inside its core's free window (narrow gaps take fewer blocks);")
	fmt.Println("  R2 keeps the local share at least as large as any batch (the local thread finishes last);")
	fmt.Println("  R3 never offloads more than remain (⌊S/2⌋ per step).")
	fmt.Println("\nGreedy variant (R2/R3 dropped) on two wide gaps:")
	greedy := sched.Algorithm1(blocks, tp, delta, false, true, []float64{2000, 2000})
	gLocal := blocks
	gMax := 0
	for _, n := range greedy {
		gLocal -= n
		if n > gMax {
			gMax = n
		}
	}
	fmt.Printf("  allocation %v — local share %.0f µs but the largest batch takes %.0f µs,\n",
		greedy, float64(gLocal)*tp, delta+float64(gMax)*tp)
	fmt.Println("  so the task completes later than the balanced split: the imbalance R2/R3 prevent.")
}
