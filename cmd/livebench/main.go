// Command livebench runs the real Go PHY chain under wall-clock deadlines:
// the live counterpart of the discrete-event experiments, and a direct
// measurement of how far a garbage-collected runtime sits from the paper's
// pinned-pthread testbed.
//
// The subframe clock is dilated (default 50×: one "1 ms" subframe every
// 50 ms) because the unvectorized Go chain decodes an MCS-27 subframe in
// tens of milliseconds. The scheduling geometry — core mapping, utilization
// ratio, slack fractions — is preserved.
//
// Usage:
//
//	livebench -bs 2 -subframes 100 -mcs 13 -dilation 50
//	livebench -bs 4 -subframes 200 -mcs -1          # trace-driven MCS
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"

	"rtopex/internal/realtime"
	"rtopex/internal/stats"
	"rtopex/internal/trace"
)

func main() {
	var (
		bs        = flag.Int("bs", 2, "basestations")
		cores     = flag.Int("cores-per-bs", 2, "cores per basestation (⌈Tmax⌉)")
		subframes = flag.Int("subframes", 100, "subframes per basestation")
		antennas  = flag.Int("antennas", 2, "receive antennas")
		mcs       = flag.Int("mcs", 13, "fixed MCS, or -1 for trace-driven")
		snr       = flag.Float64("snr", 30, "SNR in dB")
		dilation  = flag.Float64("dilation", 50, "subframe-clock dilation factor")
		seed      = flag.Uint64("seed", 1, "random seed")
	)
	flag.Parse()

	fmt.Printf("live run: %d BS × %d subframes, %d workers, dilation %.0fx (GOMAXPROCS=%d, NumCPU=%d)\n",
		*bs, *subframes, *bs**cores, *dilation, runtime.GOMAXPROCS(0), runtime.NumCPU())

	st, err := realtime.Run(realtime.Config{
		Basestations: *bs,
		CoresPerBS:   *cores,
		Subframes:    *subframes,
		Antennas:     *antennas,
		SNRdB:        *snr,
		MCS:          *mcs,
		Profiles:     trace.DefaultProfiles,
		Dilation:     *dilation,
		Seed:         *seed,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "livebench: %v\n", err)
		os.Exit(1)
	}

	fmt.Printf("\nsubframes: %d  decoded: %d  missed: %d  dropped: %d  decodeFail: %d\n",
		st.Subframes, st.Decoded, st.Missed, st.Dropped, st.DecodeFail)
	fmt.Printf("deadline-miss rate: %.3g\n", st.MissRate())
	if len(st.ProcUS) > 0 {
		s := stats.Summarize(st.ProcUS)
		fmt.Printf("processing time (ms): p50=%.1f p90=%.1f p99=%.1f max=%.1f\n",
			s.P50/1000, s.P90/1000, s.P99/1000, s.Max/1000)
	}
	if len(st.LateUS) > 0 {
		s := stats.Summarize(st.LateUS)
		fmt.Printf("tardiness of misses (ms): p50=%.1f max=%.1f\n", s.P50/1000, s.Max/1000)
	}
	fmt.Println("\ncaveat: Go's GC and scheduler inject milliseconds of jitter; the paper's")
	fmt.Println("pinned-pthread/low-latency-kernel testbed sees tens of microseconds. See DESIGN.md.")
}
