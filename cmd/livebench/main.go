// Command livebench runs the real Go PHY chain under wall-clock deadlines:
// the live counterpart of the discrete-event experiments, and a direct
// measurement of how far a garbage-collected runtime sits from the paper's
// pinned-pthread testbed.
//
// The subframe clock is dilated (default 50×: one "1 ms" subframe every
// 50 ms) because the unvectorized Go chain decodes an MCS-27 subframe in
// tens of milliseconds. The scheduling geometry — core mapping, utilization
// ratio, slack fractions — is preserved.
//
// With -http the run carries the full observability surface: /metrics,
// pprof, /healthz+/readyz probes, the flight recorder's /dossiers, and the
// history plane's /api/series, /api/query, /api/slo and /api/alerts.
// -slo declares burn-rate objectives over the live counters; a firing
// alert cross-links the miss dossiers captured inside its window.
//
// Usage:
//
//	livebench -bs 2 -subframes 100 -mcs 13 -dilation 50
//	livebench -bs 4 -subframes 200 -mcs -1          # trace-driven MCS
//	livebench -http :6060 -flight /tmp/spool \
//	  -slo 'miss_rate: rtopex_live_missed_total+rtopex_live_dropped_total / rtopex_live_subframes_total <= 0.1% over 5m'
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"rtopex/internal/flight"
	"rtopex/internal/obs"
	"rtopex/internal/realtime"
	"rtopex/internal/stats"
	"rtopex/internal/trace"
)

func main() {
	var (
		bs        = flag.Int("bs", 2, "basestations")
		cores     = flag.Int("cores-per-bs", 2, "cores per basestation (⌈Tmax⌉)")
		subframes = flag.Int("subframes", 100, "subframes per basestation")
		antennas  = flag.Int("antennas", 2, "receive antennas")
		mcs       = flag.Int("mcs", 13, "fixed MCS, or -1 for trace-driven")
		snr       = flag.Float64("snr", 30, "SNR in dB")
		dilation  = flag.Float64("dilation", 50, "subframe-clock dilation factor")
		phyWork   = flag.Int("phy-workers", 1, "subtask workers per core (parallel PHY fast path; ≤1 = serial)")
		pipeDepth = flag.Int("pipeline-depth", 1, "cross-subframe window per core (≥2 overlaps consecutive subframes' stages; ≤1 = serial)")
		seed      = flag.Uint64("seed", 1, "random seed")
		httpAddr  = flag.String("http", "", "serve /metrics, /debug/vars, /debug/pprof, health probes and the /api history endpoints on this address (e.g. :6060) during the run")
		pushAddr  = flag.String("push", "", "stream registry snapshots to the obscollect collector at this address (host:port)")
		pushEvery = flag.Duration("push-interval", 2*time.Second, "interval between pushes for -push")
		flightDir = flag.String("flight", "", "arm the deadline-miss flight recorder and spool dossiers into this directory")
		shipAddr  = flag.String("flight-ship", "", "ship spooled dossiers to this daemon's /dossiers/push (default: the -push address)")
		token     = flag.String("auth-token", "", "bearer token for -flight-ship (default $RTOPEX_AUTH_TOKEN)")

		histStep   = flag.Duration("history-step", time.Second, "history scrape interval (0 disables the time-series store)")
		histKeep   = flag.Duration("history-retention", 15*time.Minute, "history retention per series")
		sloFast    = flag.Duration("slo-fast", 0, "override the fast burn window for every -slo objective (default window/12)")
		sloSlow    = flag.Duration("slo-slow", 0, "override the slow burn window for every -slo objective (default the SLO window)")
		sloPend    = flag.Duration("slo-pending", 0, "how long burn must persist before an alert fires")
		linger     = flag.Duration("linger", 0, "keep serving -http for this long after the run finishes (inspection/smoke)")
		objectives []obs.Objective
	)
	flag.Func("slo", "declarative objective, e.g. 'miss_rate: errs / total <= 0.1% over 5m' (repeatable)", func(spec string) error {
		o, err := obs.ParseObjective(spec)
		if err != nil {
			return err
		}
		objectives = append(objectives, o)
		return nil
	})
	logCfg := obs.LogFlags(nil)
	flag.Parse()

	logger, err := logCfg.Logger("livebench", os.Stderr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "livebench: %v\n", err)
		os.Exit(1)
	}
	fatalf := func(format string, args ...any) {
		logger.Error(fmt.Sprintf(format, args...))
		os.Exit(1)
	}

	// The live run always carries the observability plane: a registry for
	// the progress counters and a per-core accountant replaying the event
	// stream, whether or not -http exposes them. A Go-runtime sampler adds
	// GC pause and heap series — the jitter sources the caveat below names.
	reg := obs.NewRegistry()
	sampler := obs.StartRuntime(reg, time.Second)
	defer sampler.Stop()

	// -flight arms the miss flight recorder: every deadline miss, drop or
	// arena failure freezes a dossier into the spool, and the -http surface
	// gains /dossiers and the /events SSE stream.
	var rec *flight.Recorder
	var spool *flight.Spool
	if *flightDir != "" {
		spool, err = flight.NewSpool(flight.SpoolConfig{Dir: *flightDir})
		if err != nil {
			fatalf("-flight: %v", err)
		}
		rec = flight.New(flight.Config{Spool: spool, Registry: reg})
	}

	// The history plane: a scraper samples the registry into the TSDB every
	// -history-step, and the SLO engine (when -slo objectives are declared)
	// evaluates its burn rates after every scrape, cross-linking the flight
	// recorder's dossiers onto firing alerts.
	var (
		db  *obs.TSDB
		slo *obs.SLOEngine
	)
	if *histStep > 0 {
		db = obs.NewTSDB(obs.TSDBConfig{Step: *histStep, Retention: *histKeep})
		if len(objectives) > 0 {
			for i := range objectives {
				if *sloFast > 0 {
					objectives[i].FastWindow = *sloFast
				}
				if *sloSlow > 0 {
					objectives[i].SlowWindow = *sloSlow
				}
				objectives[i].Pending = *sloPend
			}
			slo = obs.NewSLOEngine(db, objectives...)
			if rec != nil {
				slo.SetDossierSource(rec)
			}
		}
		scraper := obs.StartScraper(obs.ScraperConfig{
			DB:       db,
			Snapshot: reg.Snapshot,
			SLO:      slo,
		})
		defer scraper.Stop()
	} else if len(objectives) > 0 {
		fatalf("-slo requires the history store (-history-step > 0)")
	}

	if *httpAddr != "" {
		extra := obs.HealthRoutes(nil)
		if rec != nil {
			extra = append(extra, rec.Routes()...)
		}
		if db != nil {
			extra = append(extra, obs.APIRoutes(obs.SingleHistory(db, slo))...)
		}
		bound, stop, err := obs.Serve(*httpAddr, reg, extra...)
		if err != nil {
			fatalf("-http: %v", err)
		}
		defer stop()
		logger.Info("observability endpoint up", "addr", "http://"+bound+"/")
	}
	var stopPush func() error
	if *pushAddr != "" {
		pusher, err := obs.NewPusher(obs.PusherConfig{
			Addr:   *pushAddr,
			Source: obs.DefaultSource(obs.L("role", "livebench")),
			Logf:   obs.Printf(logger),
		})
		if err != nil {
			fatalf("-push: %v", err)
		}
		// Periodic pushes keep the collector's fleet view live during the
		// run; the deferred stop sends the final (complete) state.
		stopPush = pusher.StartPeriodic(reg, *pushEvery)
		defer func() {
			if err := stopPush(); err != nil {
				logger.Warn("final push failed", "err", err)
			}
		}()
	}
	// Spooled dossiers ship to a fleet daemon's /dossiers/push (obscollect
	// or sweepd) so fleet-side SLO alerts can cross-link them too.
	var shipStop func()
	if spool != nil {
		addr := *shipAddr
		if addr == "" {
			addr = *pushAddr
		}
		if addr != "" {
			shipper, err := flight.NewShipper(flight.ShipperConfig{
				Addr:      addr,
				Source:    obs.DefaultSource(obs.L("role", "livebench")).ID,
				AuthToken: obs.AuthTokenFromEnv(*token),
				Logf:      obs.Printf(logger),
			})
			if err != nil {
				fatalf("-flight-ship: %v", err)
			}
			shipStop = shipper.StartPeriodic(spool, *pushEvery)
		}
	}
	acct := obs.NewCoreAccountant()

	fmt.Printf("live run: %d BS × %d subframes, %d workers, dilation %.0fx (GOMAXPROCS=%d, NumCPU=%d)\n",
		*bs, *subframes, *bs**cores, *dilation, runtime.GOMAXPROCS(0), runtime.NumCPU())

	st, err := realtime.Run(realtime.Config{
		Basestations:  *bs,
		CoresPerBS:    *cores,
		Subframes:     *subframes,
		Antennas:      *antennas,
		SNRdB:         *snr,
		MCS:           *mcs,
		Profiles:      trace.DefaultProfiles,
		Dilation:      *dilation,
		PHYWorkers:    *phyWork,
		PipelineDepth: *pipeDepth,
		Seed:          *seed,
		Tracer:        acct,
		Obs:           reg,
		Flight:        rec,
	})
	if err != nil {
		fatalf("%v", err)
	}

	fmt.Printf("\nsubframes: %d  decoded: %d  missed: %d  dropped: %d  decodeFail: %d\n",
		st.Subframes, st.Decoded, st.Missed, st.Dropped, st.DecodeFail)
	fmt.Printf("deadline-miss rate: %.3g\n", st.MissRate())
	if len(st.ProcUS) > 0 {
		s := stats.Summarize(st.ProcUS)
		fmt.Printf("processing time (ms): p50=%.1f p90=%.1f p99=%.1f max=%.1f\n",
			s.P50/1000, s.P90/1000, s.P99/1000, s.Max/1000)
	}
	if len(st.LateUS) > 0 {
		s := stats.Summarize(st.LateUS)
		fmt.Printf("tardiness of misses (ms): p50=%.1f max=%.1f\n", s.P50/1000, s.Max/1000)
	}

	// Per-core utilization from the replayed event stream. Idle includes
	// wait-for-release slack; misses show up as busy fractions above the
	// 1/CoresPerBS partitioned share.
	reports := acct.Reports(*bs**cores, 0)
	acct.Publish(reg, *bs**cores, 0)
	fmt.Println("\nper-core utilization (busy/migration/idle fractions):")
	for _, r := range reports {
		fmt.Printf("  core %2d: busy %.3f  mig %.3f  idle %.3f  (busy %.1f ms)\n",
			r.Core, r.Busy, r.Migration, r.Idle, r.BusyUS/1000)
	}

	// Final Go-runtime sample: the GC/heap series the -http endpoint serves.
	obs.SampleRuntime(reg)
	if g := reg.Gauge("rtopex_go_gc_cycles_total"); g.IsSet() {
		fmt.Printf("\ngo runtime: %d GC cycles, heap %.1f MB live",
			int64(g.Value()), reg.Gauge("rtopex_go_heap_objects_bytes").Value()/1e6)
		if p := reg.Gauge("rtopex_go_gc_pause_seconds", obs.L("q", "0.99")); p.IsSet() {
			fmt.Printf(", GC pause p99 %.2f ms", p.Value()*1e3)
		}
		fmt.Println()
	}

	if rec != nil {
		rec.Close()
		if shipStop != nil {
			shipStop() // final ship after the recorder flushed its queue
		}
		fmt.Printf("\nflight recorder: %d trigger(s), %d dossier(s) spooled to %s, %d suppressed\n",
			rec.Triggers(), rec.Written(), *flightDir, rec.Suppressed())
	}

	// SLO recap: with history on, report each objective's windowed ratio
	// and the alert it ended the run in.
	if slo != nil {
		fmt.Println("\nslo:")
		for _, s := range slo.Status() {
			fmt.Printf("  %s: ratio %.4g vs target %.4g over %s — burn fast %.2f slow %.2f, budget used %.0f%% [%s]\n",
				s.Objective.Name, s.ErrorRatio, s.Objective.Target,
				time.Duration(s.WindowMS)*time.Millisecond, s.FastBurn, s.SlowBurn,
				s.BudgetUsed*100, s.State)
		}
		for _, a := range slo.Alerts() {
			if a.State == obs.AlertInactive {
				continue
			}
			fmt.Printf("  alert %s: %s, %d dossier(s) linked\n", a.Objective, a.State, a.DossierCount)
		}
	}

	if *linger > 0 && *httpAddr != "" {
		logger.Info("lingering for inspection", "for", (*linger).String())
		time.Sleep(*linger)
	}

	fmt.Println("\ncaveat: Go's GC and scheduler inject milliseconds of jitter; the paper's")
	fmt.Println("pinned-pthread/low-latency-kernel testbed sees tens of microseconds. See DESIGN.md.")
}
