// Command livebench runs the real Go PHY chain under wall-clock deadlines:
// the live counterpart of the discrete-event experiments, and a direct
// measurement of how far a garbage-collected runtime sits from the paper's
// pinned-pthread testbed.
//
// The subframe clock is dilated (default 50×: one "1 ms" subframe every
// 50 ms) because the unvectorized Go chain decodes an MCS-27 subframe in
// tens of milliseconds. The scheduling geometry — core mapping, utilization
// ratio, slack fractions — is preserved.
//
// Usage:
//
//	livebench -bs 2 -subframes 100 -mcs 13 -dilation 50
//	livebench -bs 4 -subframes 200 -mcs -1          # trace-driven MCS
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"rtopex/internal/flight"
	"rtopex/internal/obs"
	"rtopex/internal/realtime"
	"rtopex/internal/stats"
	"rtopex/internal/trace"
)

func main() {
	var (
		bs        = flag.Int("bs", 2, "basestations")
		cores     = flag.Int("cores-per-bs", 2, "cores per basestation (⌈Tmax⌉)")
		subframes = flag.Int("subframes", 100, "subframes per basestation")
		antennas  = flag.Int("antennas", 2, "receive antennas")
		mcs       = flag.Int("mcs", 13, "fixed MCS, or -1 for trace-driven")
		snr       = flag.Float64("snr", 30, "SNR in dB")
		dilation  = flag.Float64("dilation", 50, "subframe-clock dilation factor")
		phyWork   = flag.Int("phy-workers", 1, "subtask workers per core (parallel PHY fast path; ≤1 = serial)")
		pipeDepth = flag.Int("pipeline-depth", 1, "cross-subframe window per core (≥2 overlaps consecutive subframes' stages; ≤1 = serial)")
		seed      = flag.Uint64("seed", 1, "random seed")
		httpAddr  = flag.String("http", "", "serve /metrics, /debug/vars and /debug/pprof on this address (e.g. :6060) during the run")
		pushAddr  = flag.String("push", "", "stream registry snapshots to the obscollect collector at this address (host:port)")
		pushEvery = flag.Duration("push-interval", 2*time.Second, "interval between pushes for -push")
		flightDir = flag.String("flight", "", "arm the deadline-miss flight recorder and spool dossiers into this directory")
	)
	flag.Parse()

	// The live run always carries the observability plane: a registry for
	// the progress counters and a per-core accountant replaying the event
	// stream, whether or not -http exposes them. A Go-runtime sampler adds
	// GC pause and heap series — the jitter sources the caveat below names.
	reg := obs.NewRegistry()
	sampler := obs.StartRuntime(reg, time.Second)
	defer sampler.Stop()

	// -flight arms the miss flight recorder: every deadline miss, drop or
	// arena failure freezes a dossier into the spool, and the -http surface
	// gains /dossiers and the /events SSE stream.
	var rec *flight.Recorder
	if *flightDir != "" {
		spool, err := flight.NewSpool(flight.SpoolConfig{Dir: *flightDir})
		if err != nil {
			fmt.Fprintf(os.Stderr, "livebench: -flight: %v\n", err)
			os.Exit(1)
		}
		rec = flight.New(flight.Config{Spool: spool, Registry: reg})
	}
	if *httpAddr != "" {
		var extra []obs.Route
		if rec != nil {
			extra = rec.Routes()
		}
		bound, stop, err := obs.Serve(*httpAddr, reg, extra...)
		if err != nil {
			fmt.Fprintf(os.Stderr, "livebench: -http: %v\n", err)
			os.Exit(1)
		}
		defer stop()
		fmt.Fprintf(os.Stderr, "livebench: observability endpoint on http://%s/ (metrics, vars, pprof)\n", bound)
	}
	var stopPush func() error
	if *pushAddr != "" {
		pusher, err := obs.NewPusher(obs.PusherConfig{
			Addr:   *pushAddr,
			Source: obs.DefaultSource(obs.L("role", "livebench")),
			Logf: func(format string, args ...any) {
				fmt.Fprintf(os.Stderr, "livebench: "+format+"\n", args...)
			},
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "livebench: -push: %v\n", err)
			os.Exit(1)
		}
		// Periodic pushes keep the collector's fleet view live during the
		// run; the deferred stop sends the final (complete) state.
		stopPush = pusher.StartPeriodic(reg, *pushEvery)
		defer func() {
			if err := stopPush(); err != nil {
				fmt.Fprintf(os.Stderr, "livebench: %v\n", err)
			}
		}()
	}
	acct := obs.NewCoreAccountant()

	fmt.Printf("live run: %d BS × %d subframes, %d workers, dilation %.0fx (GOMAXPROCS=%d, NumCPU=%d)\n",
		*bs, *subframes, *bs**cores, *dilation, runtime.GOMAXPROCS(0), runtime.NumCPU())

	st, err := realtime.Run(realtime.Config{
		Basestations:  *bs,
		CoresPerBS:    *cores,
		Subframes:     *subframes,
		Antennas:      *antennas,
		SNRdB:         *snr,
		MCS:           *mcs,
		Profiles:      trace.DefaultProfiles,
		Dilation:      *dilation,
		PHYWorkers:    *phyWork,
		PipelineDepth: *pipeDepth,
		Seed:          *seed,
		Tracer:        acct,
		Obs:           reg,
		Flight:        rec,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "livebench: %v\n", err)
		os.Exit(1)
	}

	fmt.Printf("\nsubframes: %d  decoded: %d  missed: %d  dropped: %d  decodeFail: %d\n",
		st.Subframes, st.Decoded, st.Missed, st.Dropped, st.DecodeFail)
	fmt.Printf("deadline-miss rate: %.3g\n", st.MissRate())
	if len(st.ProcUS) > 0 {
		s := stats.Summarize(st.ProcUS)
		fmt.Printf("processing time (ms): p50=%.1f p90=%.1f p99=%.1f max=%.1f\n",
			s.P50/1000, s.P90/1000, s.P99/1000, s.Max/1000)
	}
	if len(st.LateUS) > 0 {
		s := stats.Summarize(st.LateUS)
		fmt.Printf("tardiness of misses (ms): p50=%.1f max=%.1f\n", s.P50/1000, s.Max/1000)
	}

	// Per-core utilization from the replayed event stream. Idle includes
	// wait-for-release slack; misses show up as busy fractions above the
	// 1/CoresPerBS partitioned share.
	reports := acct.Reports(*bs**cores, 0)
	acct.Publish(reg, *bs**cores, 0)
	fmt.Println("\nper-core utilization (busy/migration/idle fractions):")
	for _, r := range reports {
		fmt.Printf("  core %2d: busy %.3f  mig %.3f  idle %.3f  (busy %.1f ms)\n",
			r.Core, r.Busy, r.Migration, r.Idle, r.BusyUS/1000)
	}

	// Final Go-runtime sample: the GC/heap series the -http endpoint serves.
	obs.SampleRuntime(reg)
	if g := reg.Gauge("rtopex_go_gc_cycles_total"); g.IsSet() {
		fmt.Printf("\ngo runtime: %d GC cycles, heap %.1f MB live",
			int64(g.Value()), reg.Gauge("rtopex_go_heap_objects_bytes").Value()/1e6)
		if p := reg.Gauge("rtopex_go_gc_pause_seconds", obs.L("q", "0.99")); p.IsSet() {
			fmt.Printf(", GC pause p99 %.2f ms", p.Value()*1e3)
		}
		fmt.Println()
	}

	if rec != nil {
		rec.Close()
		fmt.Printf("\nflight recorder: %d trigger(s), %d dossier(s) spooled to %s, %d suppressed\n",
			rec.Triggers(), rec.Written(), *flightDir, rec.Suppressed())
	}

	fmt.Println("\ncaveat: Go's GC and scheduler inject milliseconds of jitter; the paper's")
	fmt.Println("pinned-pthread/low-latency-kernel testbed sees tens of microseconds. See DESIGN.md.")
}
