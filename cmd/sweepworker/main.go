// Command sweepworker executes sweep units leased from a sweepd
// coordinator: lease, run, deliver the artifact record, repeat — with
// -workers units in flight and a background heartbeat keeping every held
// lease alive. The worker exits when the coordinator reports the sweep
// resolved.
//
//	sweepworker -coordinator host:7600 -workers 4
//	sweepworker -coordinator host:7600 -push collector:9090   # live obs
//
// -push streams this worker's registry (per-unit counters plus each
// finished table's summary gauges) to a cmd/obscollect collector, the same
// passthrough `rtopex -push` offers; -auth-token (or $RTOPEX_AUTH_TOKEN)
// is sent as a bearer token to both the coordinator and the collector.
// Unit results are byte-identical to what a serial sweep.Run would record:
// the lease carries the unit's derived seed inside its resolved options,
// so nothing about this process's identity leaks into the artifact.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"rtopex/internal/fleet"
	"rtopex/internal/obs"
)

func main() {
	var (
		coordinator = flag.String("coordinator", "", "sweepd address (host:port or http://host:port)")
		workers     = flag.Int("workers", 0, "units to run concurrently (default NumCPU)")
		name        = flag.String("name", "", "worker id on the coordinator's status page (default hostname-pid)")
		token       = flag.String("auth-token", "", "bearer token for the coordinator and collector (default $RTOPEX_AUTH_TOKEN)")
		pushAddr    = flag.String("push", "", "also stream registry snapshots to the obscollect collector at this address")
		quiet       = flag.Bool("quiet", false, "suppress per-unit log lines")
	)
	flag.Parse()

	logf := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "sweepworker: "+format+"\n", args...)
	}
	wlogf := logf
	if *quiet {
		wlogf = nil
	}
	if *coordinator == "" {
		logf("specify -coordinator host:port")
		flag.Usage()
		os.Exit(2)
	}
	n := *workers
	if n <= 0 {
		n = runtime.NumCPU()
	}
	authToken := obs.AuthTokenFromEnv(*token)

	var reg *obs.Registry
	var pusher *obs.Pusher
	if *pushAddr != "" {
		reg = obs.NewRegistry()
		var err error
		pusher, err = obs.NewPusher(obs.PusherConfig{
			Addr:      *pushAddr,
			Source:    obs.DefaultSource(obs.L("role", "sweepworker")),
			AuthToken: authToken,
			Logf:      logf,
		})
		if err != nil {
			logf("-push: %v", err)
			os.Exit(1)
		}
	}

	start := time.Now()
	res, err := fleet.RunWorker(fleet.WorkerConfig{
		Coordinator: *coordinator,
		Name:        *name,
		Parallel:    n,
		AuthToken:   authToken,
		Logf:        wlogf,
		Obs:         reg,
		Push:        pusher,
	})
	if res != nil {
		logf("done in %.1fs: %d completed, %d duplicates, %d failed",
			time.Since(start).Seconds(), res.Completed, res.Duplicates, res.Failed)
	}
	if err != nil {
		logf("%v", err)
		os.Exit(1)
	}
}
