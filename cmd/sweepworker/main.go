// Command sweepworker executes sweep units leased from a sweepd
// coordinator: lease, run, deliver the artifact record, repeat — with
// -workers units in flight and a background heartbeat keeping every held
// lease alive. The worker exits when the coordinator reports the sweep
// resolved.
//
//	sweepworker -coordinator host:7600 -workers 4
//	sweepworker -coordinator host:7600 -push collector:9090   # live obs
//	sweepworker -coordinator host:7600 -flight-spool /tmp/fl  # miss forensics
//
// -push streams this worker's registry (per-unit counters plus each
// finished table's summary gauges and rtopex_go_* runtime series) to a
// cmd/obscollect collector, the same passthrough `rtopex -push` offers;
// -auth-token (or $RTOPEX_AUTH_TOKEN) is sent as a bearer token to the
// coordinator, the collector and the dossier push path.
//
// -flight-spool arms the process-wide deadline-miss flight recorder
// (sched.ArmFlight): every leased unit's run records miss dossiers into
// the spool directory, and -flight-ship (default: the -push address)
// streams them to the daemon's /dossiers/push endpoint as they appear.
// Recording is forensic only — unit results stay byte-identical to what a
// serial sweep.Run would record: the lease carries the unit's derived seed
// inside its resolved options, so nothing about this process's identity
// leaks into the artifact.
//
// Logs are structured (log/slog); -log-format {text,json} and -log-level
// select the handler shared by all fleet daemons.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"rtopex/internal/fleet"
	"rtopex/internal/flight"
	"rtopex/internal/obs"
	"rtopex/internal/sched"
)

func main() {
	var (
		coordinator = flag.String("coordinator", "", "sweepd address (host:port or http://host:port)")
		workers     = flag.Int("workers", 0, "units to run concurrently (default NumCPU)")
		name        = flag.String("name", "", "worker id on the coordinator's status page (default hostname-pid)")
		token       = flag.String("auth-token", "", "bearer token for the coordinator and collector (default $RTOPEX_AUTH_TOKEN)")
		pushAddr    = flag.String("push", "", "also stream registry snapshots to the obscollect collector at this address")
		flightDir   = flag.String("flight-spool", "", "arm the deadline-miss flight recorder and spool dossiers into this directory")
		flightShip  = flag.String("flight-ship", "", "ship spooled dossiers to this daemon's /dossiers/push (default: the -push address)")
		quiet       = flag.Bool("quiet", false, "suppress per-unit log lines")
	)
	logCfg := obs.LogFlags(nil)
	flag.Parse()

	logger, err := logCfg.Logger("sweepworker", nil)
	if err != nil {
		fmt.Fprintf(os.Stderr, "sweepworker: %v\n", err)
		os.Exit(2)
	}
	logf := obs.Printf(logger)
	wlogf := logf
	if *quiet {
		wlogf = nil
	}
	if *coordinator == "" {
		logf("specify -coordinator host:port")
		flag.Usage()
		os.Exit(2)
	}
	n := *workers
	if n <= 0 {
		n = runtime.NumCPU()
	}
	authToken := obs.AuthTokenFromEnv(*token)
	source := obs.DefaultSource(obs.L("role", "sweepworker"))
	if *name != "" {
		source.ID = *name
	}

	var reg *obs.Registry
	var pusher *obs.Pusher
	if *pushAddr != "" {
		reg = obs.NewRegistry()
		var err error
		pusher, err = obs.NewPusher(obs.PusherConfig{
			Addr:      *pushAddr,
			Source:    source,
			AuthToken: authToken,
			Logf:      logf,
		})
		if err != nil {
			logf("-push: %v", err)
			os.Exit(1)
		}
		// The runtime sampler feeds the pushed registry, so the collector
		// sees this worker's rtopex_go_* heap/GC/goroutine series live.
		sampler := obs.StartRuntime(reg, time.Second)
		defer sampler.Stop()
	}

	// -flight-spool arms the process-wide recorder: every unit run by this
	// worker tees a flight tap and freezes miss dossiers into the spool.
	var rec *flight.Recorder
	var shipStop func()
	if *flightDir != "" {
		spool, err := flight.NewSpool(flight.SpoolConfig{Dir: *flightDir})
		if err != nil {
			logf("-flight-spool: %v", err)
			os.Exit(1)
		}
		rec = flight.New(flight.Config{Spool: spool, Registry: reg})
		disarm := sched.ArmFlight(rec)
		defer disarm()
		shipAddr := *flightShip
		if shipAddr == "" {
			shipAddr = *pushAddr
		}
		if shipAddr != "" {
			shipper, err := flight.NewShipper(flight.ShipperConfig{
				Addr:      shipAddr,
				Source:    source.ID,
				AuthToken: authToken,
				Logf:      logf,
			})
			if err != nil {
				logf("-flight-ship: %v", err)
				os.Exit(1)
			}
			shipStop = shipper.StartPeriodic(spool, 2*time.Second)
		}
	}

	start := time.Now()
	res, err := fleet.RunWorker(fleet.WorkerConfig{
		Coordinator: *coordinator,
		Name:        *name,
		Parallel:    n,
		AuthToken:   authToken,
		Logf:        wlogf,
		Obs:         reg,
		Push:        pusher,
	})
	if rec != nil {
		rec.Close() // flush pending dossiers before the final ship
		if shipStop != nil {
			shipStop()
		}
		logf("flight recorder: %d trigger(s), %d dossier(s) spooled, %d suppressed",
			rec.Triggers(), rec.Written(), rec.Suppressed())
	}
	if res != nil {
		logf("done in %.1fs: %d completed, %d duplicates, %d failed",
			time.Since(start).Seconds(), res.Completed, res.Duplicates, res.Failed)
	}
	if err != nil {
		logf("%v", err)
		os.Exit(1)
	}
}
