// Command tracegen generates cellular load traces in the rtopex CSV format
// and prints summary statistics, replacing the paper's USRP off-air
// captures (see DESIGN.md for the substitution rationale).
//
// Usage:
//
//	tracegen -n 30000 -seed 1 -out traces.csv
//	tracegen -n 30000 -stats            # print distribution summary only
package main

import (
	"flag"
	"fmt"
	"os"

	"rtopex/internal/stats"
	"rtopex/internal/trace"
)

func main() {
	var (
		n     = flag.Int("n", 30000, "subframes per basestation (1 ms each)")
		seed  = flag.Uint64("seed", 1, "random seed")
		out   = flag.String("out", "", "output CSV path (stdout when empty)")
		stat  = flag.Bool("stats", false, "print summary statistics instead of the trace")
		burst = flag.Float64("burst-scale", 1, "multiply burst probabilities (load intensity knob)")
	)
	flag.Parse()

	profiles := make([]trace.Profile, len(trace.DefaultProfiles))
	copy(profiles, trace.DefaultProfiles)
	for i := range profiles {
		profiles[i].BurstProb *= *burst
	}

	names := make([]string, len(profiles))
	traces := make([]trace.Trace, len(profiles))
	for i, p := range profiles {
		names[i] = p.Name
		traces[i] = trace.NewGenerator(p, *seed+uint64(i)).Generate(*n)
	}

	if *stat {
		for i, tr := range traces {
			s := stats.Summarize([]float64(tr))
			fmt.Printf("%s: mean=%.3f p50=%.3f p90=%.3f stepVar=%.3f mcsMean=%.1f\n",
				names[i], s.Mean, s.P50, s.P90, tr.StepVariation(), meanMCS(tr))
		}
		return
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintf(os.Stderr, "tracegen: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	if err := trace.Write(w, names, traces); err != nil {
		fmt.Fprintf(os.Stderr, "tracegen: %v\n", err)
		os.Exit(1)
	}
}

func meanMCS(tr trace.Trace) float64 {
	sum := 0
	for _, m := range tr.MCSSeries() {
		sum += m
	}
	return float64(sum) / float64(len(tr))
}
