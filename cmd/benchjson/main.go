// Command benchjson converts `go test -bench` output on stdin into a JSON
// document, so benchmark results (shards/s, µs/subframe, ns/op, allocs)
// can be archived and diffed like any other artifact:
//
//	go test -bench 'Sweep' -benchtime 1x ./internal/sweep | benchjson -out BENCH_sweep.json
//
// Non-benchmark lines (PASS, ok, goos/goarch headers) pass through to
// stderr unchanged so the run stays readable in CI logs.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"rtopex/internal/benchparse"
)

func main() {
	out := flag.String("out", "", "write JSON here (default stdout)")
	flag.Parse()

	var lines []string
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		lines = append(lines, line)
		fmt.Fprintln(os.Stderr, line)
	}
	if err := sc.Err(); err != nil {
		fail(err)
	}

	doc := benchparse.Parse(lines)
	if len(doc.Benchmarks) == 0 {
		fail(fmt.Errorf("no benchmark result lines on stdin"))
	}
	enc, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		fail(err)
	}
	enc = append(enc, '\n')

	if *out == "" {
		os.Stdout.Write(enc)
		return
	}
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		fail(err)
	}
	fmt.Fprintf(os.Stderr, "benchjson: wrote %d benchmark(s) to %s\n", len(doc.Benchmarks), *out)
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
	os.Exit(1)
}
