// Command benchjson converts `go test -bench` output on stdin into a JSON
// document, so benchmark results (shards/s, µs/subframe, ns/op, allocs)
// can be archived and diffed like any other artifact:
//
//	go test -bench 'Sweep' -benchtime 1x ./internal/sweep | benchjson -out BENCH_sweep.json
//
// With -check it is also the bench-regression gate: the fresh run on stdin
// is compared against a committed baseline under per-metric relative
// tolerances, with a PASS/DRIFT report:
//
//	go test -bench ... | benchjson -check BENCH_sweep.json -advisory
//
// Timing metrics from single-iteration CI runs are noisy, so the default
// tolerances are wide (±60% on ns/op and derived rates) while allocation
// metrics, which are nearly deterministic, are held tight (±10% on
// allocs/op). Override any of them with repeated -tol metric=rel flags.
// -advisory reports drift without failing the exit code — the mode `make
// ci` uses, where the gate should inform rather than block.
//
// Non-benchmark lines (PASS, ok, goos/goarch headers) pass through to
// stderr unchanged so the run stays readable in CI logs.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"rtopex/internal/benchparse"
)

// defaultTolerances are the per-metric relative drift bounds -check applies
// unless overridden with -tol.
var defaultTolerances = map[string]float64{
	"ns/op":       0.60,
	"shards/s":    0.60,
	"us/subframe": 0.60,
	"B/op":        0.30,
	"allocs/op":   0.10,
}

// tolFlags accumulates repeated -tol metric=rel overrides.
type tolFlags map[string]float64

func (t tolFlags) String() string { return fmt.Sprint(map[string]float64(t)) }

func (t tolFlags) Set(s string) error {
	k, v, ok := strings.Cut(s, "=")
	if !ok {
		return fmt.Errorf("want metric=rel, got %q", s)
	}
	rel, err := strconv.ParseFloat(v, 64)
	if err != nil || rel < 0 {
		return fmt.Errorf("bad tolerance %q", v)
	}
	t[strings.TrimSpace(k)] = rel
	return nil
}

func main() {
	out := flag.String("out", "", "write JSON here (default stdout when -check is off)")
	check := flag.String("check", "", "compare the fresh run against this baseline JSON and report PASS/DRIFT")
	advisory := flag.Bool("advisory", false, "with -check: report drift but exit 0")
	tols := tolFlags{}
	flag.Var(tols, "tol", "override one metric's relative tolerance for -check (repeatable, e.g. -tol ns/op=0.3)")
	flag.Parse()

	var lines []string
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		lines = append(lines, line)
		fmt.Fprintln(os.Stderr, line)
	}
	if err := sc.Err(); err != nil {
		fail(err)
	}

	doc := benchparse.Parse(lines)
	if len(doc.Benchmarks) == 0 {
		fail(fmt.Errorf("no benchmark result lines on stdin"))
	}

	if *out != "" || *check == "" {
		writeDoc(doc, *out)
	}
	if *check != "" {
		os.Exit(runCheck(doc, *check, tols, *advisory))
	}
}

func writeDoc(doc benchparse.Doc, out string) {
	enc, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		fail(err)
	}
	enc = append(enc, '\n')
	if out == "" {
		os.Stdout.Write(enc)
		return
	}
	if err := os.WriteFile(out, enc, 0o644); err != nil {
		fail(err)
	}
	fmt.Fprintf(os.Stderr, "benchjson: wrote %d benchmark(s) to %s\n", len(doc.Benchmarks), out)
}

// runCheck diffs the fresh doc against the baseline file and returns the
// process exit code.
func runCheck(fresh benchparse.Doc, path string, tols tolFlags, advisory bool) int {
	raw, err := os.ReadFile(path)
	if err != nil {
		fail(err)
	}
	var base benchparse.Doc
	if err := json.Unmarshal(raw, &base); err != nil {
		fail(fmt.Errorf("parse baseline %s: %v", path, err))
	}

	opts := benchparse.CompareOptions{Tolerances: map[string]float64{}, Default: 0.5}
	for k, v := range defaultTolerances {
		opts.Tolerances[k] = v
	}
	for k, v := range tols {
		opts.Tolerances[k] = v
	}

	metrics := 0
	for _, b := range base.Benchmarks {
		metrics += len(b.Metrics)
	}
	drifts := benchparse.Compare(base, fresh, opts)
	if len(drifts) == 0 {
		fmt.Fprintf(os.Stderr, "bench-check: PASS — %d metric(s) across %d benchmark(s) within tolerance of %s\n",
			metrics, len(base.Benchmarks), path)
		return 0
	}
	fmt.Fprintf(os.Stderr, "bench-check: DRIFT — %d of %d metric(s) outside tolerance of %s:\n",
		len(drifts), metrics, path)
	for _, d := range drifts {
		fmt.Fprintf(os.Stderr, "  %s\n", d)
	}
	fmt.Fprintln(os.Stderr, "bench-check: regenerate the baseline with `make bench` after an intentional perf change")
	if advisory {
		fmt.Fprintln(os.Stderr, "bench-check: advisory mode, not failing the build")
		return 0
	}
	return 1
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
	os.Exit(1)
}
