// Command phyprof profiles this repository's own Go PHY chain and fits the
// paper's linear processing-time model (Eq. 1) to the measurements — the
// measured-mode counterpart of Table 1. Absolute coefficients differ from
// the paper's SSE-optimized OAI build; the linear structure and fit quality
// are the reproduced claims.
//
// Usage:
//
//	phyprof [-trials 3] [-antennas 1,2] [-snrs 10,20,30] [-seed 1] [-workers 1] [-decoder quant|float]
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"rtopex/internal/bits"
	"rtopex/internal/channel"
	"rtopex/internal/lte"
	"rtopex/internal/model"
	"rtopex/internal/phy"
	"rtopex/internal/stats"
	"rtopex/internal/turbo"
)

func main() {
	var (
		trials  = flag.Int("trials", 3, "subframes per (MCS, SNR, N) cell")
		antList = flag.String("antennas", "1,2", "comma-separated antenna counts")
		snrList = flag.String("snrs", "10,20,30", "comma-separated SNRs (dB)")
		seed    = flag.Uint64("seed", 1, "random seed")
		mcsStep = flag.Int("mcs-step", 3, "MCS sweep step (1 = all 28)")
		workers = flag.Int("workers", 1, "subtask workers for the parallel fast path (≤1 = serial)")
		decoder = flag.String("decoder", "quant", "turbo decode arithmetic: quant (int16 fast path) or float (float64 reference)")
	)
	flag.Parse()

	var path turbo.Path
	switch *decoder {
	case "quant":
		path = turbo.PathQuantized
	case "float":
		path = turbo.PathFloat64
	default:
		fatal(fmt.Errorf("unknown -decoder %q (want quant or float)", *decoder))
	}

	ants, err := parseInts(*antList)
	if err != nil {
		fatal(err)
	}
	snrs, err := parseFloats(*snrList)
	if err != nil {
		fatal(err)
	}

	r := stats.NewRNG(*seed)
	var pool *phy.Pool
	if *workers > 1 {
		pool = phy.NewPool(*workers)
		defer pool.Close()
	}
	arena := phy.NewArena()
	var obs []model.Observation
	fmt.Println("profiling Go PHY (this runs the full turbo decoder; expect minutes at scale)...")
	for _, n := range ants {
		for mcs := 0; mcs <= lte.MaxMCS; mcs += *mcsStep {
			for _, snr := range snrs {
				for trial := 0; trial < *trials; trial++ {
					o, err := measureOne(r, arena, pool, mcs, n, snr, path)
					if err != nil {
						fatal(err)
					}
					obs = append(obs, o)
				}
			}
		}
	}

	params, r2, err := model.Fit(obs)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("\nmeasurements: %d\n", len(obs))
	fmt.Printf("%-18s %8s %8s %8s %8s %8s\n", "source", "w0", "w1", "w2", "w3", "r2")
	fmt.Printf("%-18s %8.1f %8.1f %8.1f %8.1f %8.3f\n", "paper (Table 1)",
		model.PaperGPP.W0, model.PaperGPP.W1, model.PaperGPP.W2, model.PaperGPP.W3, 0.992)
	fmt.Printf("%-18s %8.1f %8.1f %8.1f %8.1f %8.3f\n", "go-phy (measured)",
		params.W0, params.W1, params.W2, params.W3, r2)
	fmt.Println("\nnote: w-units are µs; the Go chain is unvectorized, so absolute values exceed")
	fmt.Println("the paper's. The linearity in N, K and D·L is the property under test.")
}

// measureOne runs one full subframe through transmit → channel → receive
// and returns the observation for the model fit. Receivers are borrowed
// from the arena (so repeated cells reuse warmed scratch) and, when a pool
// is given, the pipeline stages fan out across its workers.
func measureOne(r *stats.RNG, arena *phy.Arena, pool *phy.Pool, mcs, antennas int, snrDB float64, path turbo.Path) (model.Observation, error) {
	cfg := phy.Config{
		Bandwidth:   lte.BW10MHz,
		MCS:         mcs,
		Antennas:    antennas,
		RNTI:        0x2002,
		CellID:      11,
		DecoderPath: path,
	}
	tx, err := phy.NewTransmitter(cfg)
	if err != nil {
		return model.Observation{}, err
	}
	payload := make([]byte, tx.TBS())
	bits.RandomBits(payload, r.Uint64)
	wave, err := tx.Transmit(payload)
	if err != nil {
		return model.Observation{}, err
	}
	ch, err := channel.New(snrDB, antennas, r.Uint64())
	if err != nil {
		return model.Observation{}, err
	}
	iq, _ := ch.Apply(wave)
	rx, err := arena.Get(cfg)
	if err != nil {
		return model.Observation{}, err
	}
	start := time.Now()
	var res phy.Result
	if pool != nil {
		res, err = pool.ProcessParallel(rx, iq, ch.N0())
	} else {
		res, err = rx.Process(iq, ch.N0())
	}
	if err != nil {
		return model.Observation{}, err
	}
	elapsed := time.Since(start).Seconds() * 1e6 // µs
	defer arena.Put(rx)
	info, err := lte.MCSTable(mcs)
	if err != nil {
		return model.Observation{}, err
	}
	d, err := lte.SubcarrierLoad(mcs, cfg.Bandwidth)
	if err != nil {
		return model.Observation{}, err
	}
	l := res.Iterations
	if l < 1 {
		l = 1
	}
	return model.Observation{N: antennas, K: info.Scheme.Order(), D: d, L: l, T: elapsed}, nil
}

func parseInts(s string) ([]int, error) {
	var out []int
	for _, f := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

func parseFloats(s string) ([]float64, error) {
	var out []float64
	for _, f := range strings.Split(s, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(f), 64)
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "phyprof: %v\n", err)
	os.Exit(1)
}
