// Command obscollect is the central observability collector of a
// distributed rtopex fleet: workers (sweep shards, livebench runs) push
// full registry snapshots to it over HTTP, and it serves the exact
// cross-source merge — the single pane of glass the per-process `-http`
// endpoints cannot provide.
//
//	obscollect -listen :9090 -stale 1m -final merged.json
//
// Endpoints:
//
//	POST /push     wire snapshot ingest (what `rtopex -push` sends)
//	GET  /metrics  merged Prometheus exposition, byte-comparable to a
//	               single process running the whole fleet's work
//	GET  /         live fleet dashboard (sources, sweep progress, worker
//	               occupancy, per-experiment miss rates, per-core load)
//	GET  /sources  per-source push ledger
//	GET  /dump     full state as JSON
//	POST /dossiers/push   miss-dossier ingest (sweepworker -flight-ship)
//	GET  /dossiers[/<id>] stored dossier listing / document
//	GET  /healthz /readyz liveness and readiness probes (unauthenticated)
//
// With -auth-token (or $RTOPEX_AUTH_TOKEN) every endpoint except the
// health probes requires the matching bearer token; pushers send it via
// `rtopex -push` / `sweepworker -push` with the same flag or env var.
//
// Sources that stop pushing without a final snapshot (crashed workers) are
// evicted after -stale of silence. On SIGINT/SIGTERM the final merged
// snapshot is flushed to -final as JSON, and any dossiers workers shipped
// are flushed to -dossier-dir, for archival; then the process exits.
//
// Logs are structured (log/slog); -log-format {text,json} and -log-level
// select the handler shared by all fleet daemons.
package main

import (
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"rtopex/internal/obs"
)

func main() {
	var (
		listen     = flag.String("listen", ":9090", "address to serve on (use 127.0.0.1:0 for an ephemeral port)")
		stale      = flag.Duration("stale", time.Minute, "evict non-final sources silent longer than this (0 = never)")
		final      = flag.String("final", "", "flush the merged snapshot to this JSON file on shutdown")
		dossierDir = flag.String("dossier-dir", "", "flush dossiers shipped by workers to this directory on shutdown")
		addrFile   = flag.String("addr-file", "", "write the bound address to this file once listening (for scripts)")
		token      = flag.String("auth-token", "", "require this bearer token on every endpoint (default $RTOPEX_AUTH_TOKEN)")
		quiet      = flag.Bool("quiet", false, "suppress per-source log lines")
	)
	logCfg := obs.LogFlags(nil)
	flag.Parse()

	logger, err := logCfg.Logger("obscollect", nil)
	if err != nil {
		fmt.Fprintf(os.Stderr, "obscollect: %v\n", err)
		os.Exit(2)
	}
	logf := obs.Printf(logger)
	clogf := logf
	if *quiet {
		clogf = nil
	}
	col := obs.NewCollector(obs.CollectorConfig{Stale: *stale, Logf: clogf})
	dossiers := obs.NewDossierStore(obs.DossierStoreConfig{Logf: clogf})

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		logf("listen: %v", err)
		os.Exit(1)
	}
	bound := ln.Addr().String()
	if *addrFile != "" {
		if err := os.WriteFile(*addrFile, []byte(bound+"\n"), 0o644); err != nil {
			logf("addr-file: %v", err)
			os.Exit(1)
		}
	}
	authToken := obs.AuthTokenFromEnv(*token)
	auth := "open"
	if authToken != "" {
		auth = "bearer-token"
	}
	logf("listening on http://%s/ (%s: push, metrics, sources, dump, dossiers)", bound, auth)

	// Health probes stay unauthenticated (orchestrator probes carry no
	// token); collector and dossier endpoints sit behind the bearer gate.
	// Construction precedes serving, so /readyz is ready as soon as it
	// answers.
	mux := http.NewServeMux()
	obs.MountHealth(mux, nil)
	mux.Handle("/dossiers", obs.BearerAuth(authToken, dossiers.Handler()))
	mux.Handle("/dossiers/", obs.BearerAuth(authToken, dossiers.Handler()))
	mux.Handle("/", obs.BearerAuth(authToken, col.Handler()))
	srv := &http.Server{Handler: mux}
	go func() {
		if err := srv.Serve(ln); err != nil && err != http.ErrServerClosed {
			logf("serve: %v", err)
			os.Exit(1)
		}
	}()

	// Background eviction keeps the dashboard honest even when nobody
	// scrapes (the read paths also evict lazily).
	if *stale > 0 {
		go func() {
			t := time.NewTicker(*stale / 2)
			defer t.Stop()
			for range t.C {
				col.EvictStale()
			}
		}()
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	s := <-sig
	logf("%s: shutting down", s)
	_ = srv.Close()

	if *final != "" {
		f, err := os.Create(*final)
		if err != nil {
			logf("final: %v", err)
			os.Exit(1)
		}
		if err := col.WriteDump(f); err != nil {
			logf("final: %v", err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			logf("final: %v", err)
			os.Exit(1)
		}
		logf("flushed merged snapshot (%d source(s)) to %s", len(col.Sources()), *final)
	}
	if *dossierDir != "" && dossiers.Len() > 0 {
		if err := dossiers.WriteDir(*dossierDir); err != nil {
			logf("dossier-dir: %v", err)
			os.Exit(1)
		}
		logf("flushed %d dossier(s) to %s", dossiers.Len(), *dossierDir)
	}
}
