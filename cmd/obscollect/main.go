// Command obscollect is the central observability collector of a
// distributed rtopex fleet: workers (sweep shards, livebench runs) push
// full registry snapshots to it over HTTP, and it serves the exact
// cross-source merge — the single pane of glass the per-process `-http`
// endpoints cannot provide.
//
//	obscollect -listen :9090 -stale 1m -final merged.json
//
// Endpoints:
//
//	POST /push     wire snapshot ingest (what `rtopex -push` sends)
//	GET  /metrics  merged Prometheus exposition, byte-comparable to a
//	               single process running the whole fleet's work
//	GET  /         live fleet dashboard (sources, sweep progress, worker
//	               occupancy, per-experiment miss rates, per-core load)
//	GET  /sources  per-source push ledger
//	GET  /dump     full state as JSON
//	POST /dossiers/push   miss-dossier ingest (sweepworker -flight-ship)
//	GET  /dossiers[/<id>] stored dossier listing / document
//	GET  /healthz /readyz liveness and readiness probes (unauthenticated)
//	GET  /api/series /api/query /api/slo /api/alerts
//	               the history plane: per-source and merged-fleet
//	               timelines (?source=<id> selects a source; default is
//	               the merge), SLO burn status, and alerts cross-linking
//	               the dossiers workers shipped
//
// -slo declares burn-rate objectives over the merged fleet counters
// (evaluated every -history-step); a firing alert cross-links the miss
// dossiers ingested inside its window.
//
// With -auth-token (or $RTOPEX_AUTH_TOKEN) every endpoint except the
// health probes requires the matching bearer token; pushers send it via
// `rtopex -push` / `sweepworker -push` with the same flag or env var.
//
// Sources that stop pushing without a final snapshot (crashed workers) are
// evicted after -stale of silence. On SIGINT/SIGTERM the final merged
// snapshot is flushed to -final as JSON, and any dossiers workers shipped
// are flushed to -dossier-dir, for archival; then the process exits.
//
// Logs are structured (log/slog); -log-format {text,json} and -log-level
// select the handler shared by all fleet daemons.
package main

import (
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"rtopex/internal/obs"
)

func main() {
	var (
		listen     = flag.String("listen", ":9090", "address to serve on (use 127.0.0.1:0 for an ephemeral port)")
		stale      = flag.Duration("stale", time.Minute, "evict non-final sources silent longer than this (0 = never)")
		final      = flag.String("final", "", "flush the merged snapshot to this JSON file on shutdown")
		dossierDir = flag.String("dossier-dir", "", "flush dossiers shipped by workers to this directory on shutdown")
		addrFile   = flag.String("addr-file", "", "write the bound address to this file once listening (for scripts)")
		token      = flag.String("auth-token", "", "require this bearer token on every endpoint (default $RTOPEX_AUTH_TOKEN)")
		quiet      = flag.Bool("quiet", false, "suppress per-source log lines")

		histStep   = flag.Duration("history-step", 2*time.Second, "history scrape interval (0 disables the time-series store)")
		histKeep   = flag.Duration("history-retention", time.Hour, "history retention per series")
		sloFast    = flag.Duration("slo-fast", 0, "override the fast burn window for every -slo objective (default window/12)")
		sloSlow    = flag.Duration("slo-slow", 0, "override the slow burn window for every -slo objective (default the SLO window)")
		sloPend    = flag.Duration("slo-pending", 0, "how long burn must persist before an alert fires")
		objectives []obs.Objective
	)
	flag.Func("slo", "declarative objective over merged fleet counters, e.g. 'miss_rate: errs / total <= 0.1% over 1h' (repeatable)", func(spec string) error {
		o, err := obs.ParseObjective(spec)
		if err != nil {
			return err
		}
		objectives = append(objectives, o)
		return nil
	})
	logCfg := obs.LogFlags(nil)
	flag.Parse()

	logger, err := logCfg.Logger("obscollect", nil)
	if err != nil {
		fmt.Fprintf(os.Stderr, "obscollect: %v\n", err)
		os.Exit(2)
	}
	logf := obs.Printf(logger)
	clogf := logf
	if *quiet {
		clogf = nil
	}
	col := obs.NewCollector(obs.CollectorConfig{Stale: *stale, Logf: clogf})
	dossiers := obs.NewDossierStore(obs.DossierStoreConfig{Logf: clogf})

	// The history plane: per-source and merged-fleet timelines scraped
	// every -history-step, with -slo objectives evaluated over the merge
	// and firing alerts cross-linking the ingested dossiers.
	var history *obs.FleetHistory
	if *histStep > 0 {
		for i := range objectives {
			if *sloFast > 0 {
				objectives[i].FastWindow = *sloFast
			}
			if *sloSlow > 0 {
				objectives[i].SlowWindow = *sloSlow
			}
			objectives[i].Pending = *sloPend
		}
		history = obs.NewFleetHistory(col, obs.FleetHistoryConfig{
			TSDB:       obs.TSDBConfig{Step: *histStep, Retention: *histKeep},
			Objectives: objectives,
			Dossiers:   dossiers,
		})
		col.AttachHistory(history)
		history.Start()
		defer history.Stop()
	} else if len(objectives) > 0 {
		logf("-slo requires the history store (-history-step > 0)")
		os.Exit(2)
	}

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		logf("listen: %v", err)
		os.Exit(1)
	}
	bound := ln.Addr().String()
	if *addrFile != "" {
		if err := os.WriteFile(*addrFile, []byte(bound+"\n"), 0o644); err != nil {
			logf("addr-file: %v", err)
			os.Exit(1)
		}
	}
	authToken := obs.AuthTokenFromEnv(*token)
	auth := "open"
	if authToken != "" {
		auth = "bearer-token"
	}
	logf("listening on http://%s/ (%s: push, metrics, sources, dump, dossiers)", bound, auth)

	// Health probes stay unauthenticated (orchestrator probes carry no
	// token); collector and dossier endpoints sit behind the bearer gate.
	// Construction precedes serving, so /readyz is ready as soon as it
	// answers.
	mux := http.NewServeMux()
	obs.MountHealth(mux, nil)
	mux.Handle("/dossiers", obs.BearerAuth(authToken, dossiers.Handler()))
	mux.Handle("/dossiers/", obs.BearerAuth(authToken, dossiers.Handler()))
	if history != nil {
		for _, rt := range obs.APIRoutes(history.Resolve) {
			mux.Handle(rt.Pattern, obs.BearerAuth(authToken, rt.Handler))
		}
	}
	mux.Handle("/", obs.BearerAuth(authToken, col.Handler()))
	srv := &http.Server{Handler: mux}
	go func() {
		if err := srv.Serve(ln); err != nil && err != http.ErrServerClosed {
			logf("serve: %v", err)
			os.Exit(1)
		}
	}()

	// Background eviction keeps the dashboard honest even when nobody
	// scrapes (the read paths also evict lazily).
	if *stale > 0 {
		go func() {
			t := time.NewTicker(*stale / 2)
			defer t.Stop()
			for range t.C {
				col.EvictStale()
			}
		}()
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	s := <-sig
	logf("%s: shutting down", s)
	_ = srv.Close()

	if *final != "" {
		f, err := os.Create(*final)
		if err != nil {
			logf("final: %v", err)
			os.Exit(1)
		}
		if err := col.WriteDump(f); err != nil {
			logf("final: %v", err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			logf("final: %v", err)
			os.Exit(1)
		}
		logf("flushed merged snapshot (%d source(s)) to %s", len(col.Sources()), *final)
	}
	if *dossierDir != "" && dossiers.Len() > 0 {
		if err := dossiers.WriteDir(*dossierDir); err != nil {
			logf("dossier-dir: %v", err)
			os.Exit(1)
		}
		logf("flushed %d dossier(s) to %s", dossiers.Len(), *dossierDir)
	}
}
