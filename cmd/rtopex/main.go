// Command rtopex regenerates the paper's evaluation tables and figures.
//
// Usage:
//
//	rtopex -list
//	rtopex -exp fig15 [-subframes 30000] [-samples 1000000] [-seed 7] [-quick]
//	rtopex -all [-quick]
//
// Each experiment prints an aligned text table with notes tying the output
// back to the paper's claims. Runs are deterministic for a given seed.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"rtopex"
)

func main() {
	var (
		exp       = flag.String("exp", "", "experiment id to run (see -list)")
		all       = flag.Bool("all", false, "run every registered experiment")
		list      = flag.Bool("list", false, "list experiment ids")
		subframes = flag.Int("subframes", 0, "subframes per basestation (default 30000)")
		samples   = flag.Int("samples", 0, "samples for distribution experiments (default 1e6)")
		seed      = flag.Uint64("seed", 0, "random seed (default fixed)")
		quick     = flag.Bool("quick", false, "shrink scales ~10x for a fast run")
		format    = flag.String("format", "text", "output format: text or csv")
	)
	flag.Parse()

	if *list {
		for _, id := range rtopex.Experiments() {
			fmt.Println(id)
		}
		return
	}

	opts := rtopex.ExperimentOptions{
		Subframes: *subframes,
		Samples:   *samples,
		Seed:      *seed,
		Quick:     *quick,
	}

	var ids []string
	switch {
	case *all:
		ids = rtopex.Experiments()
	case *exp != "":
		ids = []string{*exp}
	default:
		fmt.Fprintln(os.Stderr, "rtopex: specify -exp <id>, -all, or -list")
		flag.Usage()
		os.Exit(2)
	}

	for _, id := range ids {
		start := time.Now()
		tb, err := rtopex.RunExperiment(id, opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "rtopex: %v\n", err)
			os.Exit(1)
		}
		switch *format {
		case "csv":
			fmt.Print(tb.CSV())
			fmt.Println()
		default:
			fmt.Print(tb.String())
			fmt.Printf("(%s in %.1fs)\n\n", id, time.Since(start).Seconds())
		}
	}
}
