// Command rtopex regenerates the paper's evaluation tables and figures.
//
// Usage:
//
//	rtopex -list
//	rtopex -exp fig15 [-subframes 30000] [-samples 1000000] [-seed 7] [-quick]
//	rtopex -all [-quick]
//	rtopex -all -quick -parallel [-out sweep.jsonl] [-resume]
//	rtopex -all -quick -parallel -skip-measured -baseline testdata/baselines/quick.jsonl
//	rtopex -exp fig15,fig16 -quick -parallel -push 127.0.0.1:9090
//
// -exp accepts a comma-separated list, which is how a fleet splits the
// registry across machines; -push streams the live registry to a central
// cmd/obscollect collector after every finished experiment.
//
// Each experiment prints an aligned text table with notes tying the output
// back to the paper's claims. Runs are deterministic for a given seed; a
// parallel sweep produces byte-identical artifact records to a serial one.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"rtopex"
)

func main() {
	var (
		exp       = flag.String("exp", "", "experiment id to run (see -list)")
		all       = flag.Bool("all", false, "run every registered experiment")
		list      = flag.Bool("list", false, "list experiment ids")
		subframes = flag.Int("subframes", 0, "subframes per basestation (default 30000)")
		samples   = flag.Int("samples", 0, "samples for distribution experiments (default 1e6)")
		seed      = flag.Uint64("seed", 0, "random seed (default fixed)")
		quick     = flag.Bool("quick", false, "shrink scales ~10x for a fast run")
		format    = flag.String("format", "text", "output format: text or csv")

		// Sweep-engine flags. Any of them routes the run through the sweep
		// orchestrator (worker pool, artifact store, baseline gate).
		parallel = flag.Bool("parallel", false, "run experiments on a worker pool (default workers = NumCPU)")
		workers  = flag.Int("workers", 0, "worker-pool size for -parallel (default NumCPU)")
		out      = flag.String("out", "", "stream artifact records to this JSON-lines store")
		resume   = flag.Bool("resume", false, "skip experiments whose config hash already has a record in -out")
		baseline = flag.String("baseline", "", "compare results against this baseline store; exit 1 on drift")
		replicas = flag.Int("replicas", 0, "run each experiment this many times under distinct derived seeds")
		timeout  = flag.Duration("timeout", 0, "per-experiment timeout for sweep runs (0 = none)")
		skipMeas = flag.Bool("skip-measured", false, "exclude wall-clock-dependent experiments (fig4)")

		// Observability: opt-in HTTP plane with Prometheus /metrics,
		// /debug/vars (expvar) and /debug/pprof/ for profiling live runs,
		// plus push streaming to a central obscollect fleet collector.
		httpAddr = flag.String("http", "", "serve /metrics, /debug/vars and /debug/pprof on this address (e.g. :6060) for the duration of the run")
		pushAddr = flag.String("push", "", "stream registry snapshots to the obscollect collector at this address (host:port)")
	)
	var tolSpecs []string
	flag.Func("tol", "per-column tolerance for -baseline, column=rel[,abs] or experiment/column=rel (repeatable)", func(s string) error {
		tolSpecs = append(tolSpecs, s)
		return nil
	})
	logCfg := rtopex.ObsLogFlags(nil)
	flag.Parse()

	logger, err := logCfg.Logger("rtopex", os.Stderr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "rtopex: %v\n", err)
		os.Exit(2)
	}
	logf := rtopex.ObsPrintf(logger)

	var reg *rtopex.ObsRegistry
	if *httpAddr != "" || *pushAddr != "" {
		reg = rtopex.NewObsRegistry()
	}
	if *httpAddr != "" {
		bound, stop, err := rtopex.ServeObs(*httpAddr, reg)
		if err != nil {
			logf("-http: %v", err)
			os.Exit(1)
		}
		defer stop()
		logf("observability endpoint on http://%s/ (metrics, vars, pprof)", bound)
	}
	var pusher *rtopex.ObsPusher
	if *pushAddr != "" {
		pusher, err = rtopex.NewObsPusher(rtopex.ObsPusherConfig{
			Addr: *pushAddr,
			Source: rtopex.DefaultObsSource(
				rtopex.ObsL("role", "rtopex"),
				rtopex.ObsL("exps", expLabel(*exp, *all))),
			Logf: logf,
		})
		if err != nil {
			logf("-push: %v", err)
			os.Exit(1)
		}
	}

	if *list {
		for _, s := range rtopex.ExperimentSpecs() {
			tag := ""
			if s.Measured {
				tag = "  (measured)"
			}
			fmt.Printf("%-12s %s%s\n", s.ID, s.Title, tag)
		}
		return
	}

	opts := rtopex.ExperimentOptions{
		Subframes: *subframes,
		Samples:   *samples,
		Seed:      *seed,
		Quick:     *quick,
	}

	var ids []string
	switch {
	case *all:
		// Empty means the whole registry to the sweep engine.
	case *exp != "":
		ids = splitIDs(*exp)
	default:
		logf("specify -exp <id>, -all, or -list")
		flag.Usage()
		os.Exit(2)
	}

	sweepMode := *parallel || *out != "" || *resume || *baseline != "" ||
		*replicas > 0 || *timeout > 0 || *skipMeas
	if sweepMode {
		os.Exit(runSweep(ids, opts, sweepFlags{
			parallel: *parallel, workers: *workers, out: *out, resume: *resume,
			baseline: *baseline, tolSpecs: tolSpecs, replicas: *replicas, timeout: *timeout,
			skipMeasured: *skipMeas, format: *format, obs: reg, push: pusher, logf: logf,
		}))
	}

	if *all {
		ids = rtopex.Experiments()
	}
	for _, id := range ids {
		start := time.Now()
		tb, err := rtopex.RunExperiment(id, opts)
		if err != nil {
			logf("%v", err)
			os.Exit(1)
		}
		if reg != nil {
			rtopex.PublishExperimentTable(reg, tb)
			if err := pusher.Push(reg); err != nil {
				logf("%v", err)
			}
		}
		printTable(tb, *format)
		if *format != "csv" {
			fmt.Printf("(%s in %.1fs)\n\n", id, time.Since(start).Seconds())
		}
	}
	if err := pusher.PushFinal(reg); err != nil {
		logf("%v", err)
		os.Exit(1)
	}
}

// splitIDs parses -exp's comma-separated experiment list.
func splitIDs(s string) []string {
	var ids []string
	for _, id := range strings.Split(s, ",") {
		if id = strings.TrimSpace(id); id != "" {
			ids = append(ids, id)
		}
	}
	return ids
}

// expLabel renders the source label describing which experiments (the
// "shard range") this process pushes for.
func expLabel(exp string, all bool) string {
	if all || exp == "" {
		return "all"
	}
	return strings.Join(splitIDs(exp), ",")
}

func printTable(tb *rtopex.ExperimentTable, format string) {
	switch format {
	case "csv":
		fmt.Print(tb.CSV())
		fmt.Println()
	default:
		fmt.Print(tb.String())
	}
}

type sweepFlags struct {
	parallel     bool
	workers      int
	out          string
	resume       bool
	baseline     string
	tolSpecs     []string
	replicas     int
	timeout      time.Duration
	skipMeasured bool
	format       string
	obs          *rtopex.ObsRegistry
	push         *rtopex.ObsPusher
	logf         func(format string, args ...any)
}

// runSweep drives the sweep engine and returns the process exit code.
func runSweep(ids []string, opts rtopex.ExperimentOptions, f sweepFlags) int {
	workers := f.workers
	if !f.parallel && workers <= 0 {
		workers = 1 // sweep-store flags without -parallel: serial semantics
	}
	res, err := rtopex.RunSweep(rtopex.SweepConfig{
		IDs:          ids,
		Workers:      workers,
		Options:      opts,
		Replicas:     f.replicas,
		Timeout:      f.timeout,
		SkipMeasured: f.skipMeasured,
		StorePath:    f.out,
		Resume:       f.resume,
		Progress:     os.Stderr,
		Obs:          f.obs,
		Push:         f.push,
	})
	if err != nil {
		f.logf("sweep: %v", err)
		return 1
	}

	// Render in deterministic (shard, replica) order regardless of which
	// worker finished first.
	records := res.SortedRecords()
	for _, r := range records {
		if f.format != "csv" && r.Replica > 0 {
			fmt.Printf("== %s replica %d ==\n", r.Experiment, r.Replica)
		}
		printTable(r.Table, f.format)
		if f.format != "csv" {
			fmt.Println()
		}
	}

	// With replicas, append mean ± 95% CI summary tables so the scatter
	// across seeds is readable without manual arithmetic.
	if f.replicas > 1 {
		for _, tb := range rtopex.AggregateSweepReplicas(records) {
			printTable(tb, f.format)
			if f.format != "csv" {
				fmt.Println()
			}
		}
	}

	f.logf("sweep: %d ran, %d reused, %d failed in %.1fs (busy %.1fs, speedup %.2fx)",
		res.Ran, res.Reused, len(res.Failures), res.Wall.Seconds(), res.Busy.Seconds(), res.Speedup())
	for _, fail := range res.Failures {
		f.logf("sweep: FAILED %s: %s", fail.Unit.Spec.ID, fail.Err)
	}

	code := 0
	if len(res.Failures) > 0 {
		code = 1
	}
	if f.baseline != "" {
		base, err := rtopex.ReadSweepStore(f.baseline)
		if err != nil {
			f.logf("baseline: %v", err)
			return 1
		}
		perCol, err := rtopex.ParseSweepTolerances(f.tolSpecs)
		if err != nil {
			f.logf("%v", err)
			return 1
		}
		drifts := rtopex.CompareSweeps(base, records, rtopex.SweepCompareOptions{PerColumn: perCol})
		if len(drifts) > 0 {
			f.logf("sweep: %d drift(s) from baseline %s:", len(drifts), f.baseline)
			for _, d := range drifts {
				f.logf("  %s", d)
			}
			code = 1
		} else {
			f.logf("sweep: matches baseline %s (%d records compared)", f.baseline, len(base))
		}
	}
	return code
}
