// Command sweepd is the fleet sweep coordinator: it expands a sweep spec
// into (experiment × replica) units, leases them to sweepworker processes
// over HTTP, re-leases units whose worker dies or goes silent, merges
// completed records into a JSON-lines store with content-hash dedup, and
// exits once every unit is resolved — optionally gating the merged store
// against a baseline, exactly like a serial `rtopex -baseline` run.
//
//	sweepd -listen :7600 -all -quick -skip-measured -out fleet.jsonl \
//	       -lease-ttl 30s -baseline testdata/baselines/quick.jsonl
//
// Endpoints (POST endpoints speak the internal/fleet JSON protocol):
//
//	POST /lease /heartbeat /complete /fail   worker protocol
//	GET  /            text status page (units, workers, leases, failures)
//	GET  /state.json  machine-readable status
//	GET  /metrics     rtopex_fleet_* lease/reclaim/liveness counters
//	POST /dossiers/push   miss-dossier ingest from sweepworker -flight-ship
//	GET  /dossiers[/<id>] stored dossier listing / document
//	GET  /healthz /readyz liveness and readiness probes (unauthenticated)
//	GET  /api/series /api/query   lease/reclaim/ingest history: the
//	               coordinator's rtopex_fleet_* counters sampled into the
//	               in-process time-series store every -history-step
//
// With -auth-token (or $RTOPEX_AUTH_TOKEN) every endpoint except the
// health probes requires the matching bearer token. The artifact store a
// fleet sweep produces is byte-identical (modulo line order) to a serial
// sweep.Run of the same spec — scripts/fleet-smoke.sh proves it in CI with
// a worker SIGKILLed mid-sweep.
//
// Logs are structured (log/slog); -log-format {text,json} and -log-level
// select the handler shared by all fleet daemons.
package main

import (
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"strings"
	"time"

	"rtopex/internal/fleet"
	"rtopex/internal/harness"
	"rtopex/internal/obs"
	"rtopex/internal/sweep"
)

func main() {
	var (
		listen     = flag.String("listen", ":7600", "address to serve the lease protocol on (use 127.0.0.1:0 for an ephemeral port)")
		addrFile   = flag.String("addr-file", "", "write the bound address to this file once listening (for scripts)")
		out        = flag.String("out", "", "merge completed records into this JSON-lines store")
		resume     = flag.Bool("resume", false, "skip units whose config hash already has a record in -out")
		leaseTTL   = flag.Duration("lease-ttl", 30*time.Second, "re-lease a unit if its worker is silent this long")
		attempts   = flag.Int("max-attempts", 3, "lease grants per unit before it fails permanently")
		baseline   = flag.String("baseline", "", "compare the merged store against this baseline on completion; exit 1 on drift")
		token      = flag.String("auth-token", "", "require this bearer token on every endpoint (default $RTOPEX_AUTH_TOKEN)")
		wait       = flag.Duration("wait", 0, "exit 1 if the sweep has not resolved after this long (0 = wait forever)")
		linger     = flag.Duration("linger", 2*time.Second, "keep serving 'done' responses this long after the sweep resolves so idle workers exit cleanly")
		dossierDir = flag.String("dossier-dir", "", "flush dossiers shipped by workers to this directory on exit")
		quiet      = flag.Bool("quiet", false, "suppress per-lease log lines")
		histStep   = flag.Duration("history-step", 2*time.Second, "lease/ingest history scrape interval (0 disables /api history)")
		histKeep   = flag.Duration("history-retention", time.Hour, "history retention per series")

		exp       = flag.String("exp", "", "comma-separated experiment ids (default: whole registry)")
		all       = flag.Bool("all", false, "sweep every registered experiment (the default when -exp is empty)")
		subframes = flag.Int("subframes", 0, "subframes per basestation (default 30000)")
		samples   = flag.Int("samples", 0, "samples for distribution experiments (default 1e6)")
		seed      = flag.Uint64("seed", 0, "root seed; unit seeds derive from it (default fixed)")
		quick     = flag.Bool("quick", false, "shrink scales ~10x")
		replicas  = flag.Int("replicas", 0, "run each experiment this many times under distinct derived seeds")
		timeout   = flag.Duration("timeout", 0, "per-unit compute budget handed to workers (0 = none)")
		skipMeas  = flag.Bool("skip-measured", false, "exclude wall-clock-dependent experiments (fig4)")
	)
	var tolSpecs []string
	flag.Func("tol", "per-column tolerance for -baseline, column=rel[,abs] or experiment/column=rel (repeatable)", func(s string) error {
		tolSpecs = append(tolSpecs, s)
		return nil
	})
	logCfg := obs.LogFlags(nil)
	flag.Parse()
	_ = all // -all is the default; the flag exists for symmetry with rtopex

	logger, err := logCfg.Logger("sweepd", nil)
	if err != nil {
		fmt.Fprintf(os.Stderr, "sweepd: %v\n", err)
		os.Exit(2)
	}
	logf := obs.Printf(logger)
	clogf := logf
	if *quiet {
		clogf = nil
	}
	perCol, err := sweep.ParseTolerances(tolSpecs)
	if err != nil {
		logf("%v", err)
		os.Exit(2)
	}

	var ids []string
	if *exp != "" {
		for _, id := range strings.Split(*exp, ",") {
			if id = strings.TrimSpace(id); id != "" {
				ids = append(ids, id)
			}
		}
	}
	coord, err := fleet.NewCoordinator(fleet.Config{
		Spec: sweep.Config{
			IDs:          ids,
			Options:      harness.Options{Subframes: *subframes, Samples: *samples, Seed: *seed, Quick: *quick},
			Replicas:     *replicas,
			Timeout:      *timeout,
			SkipMeasured: *skipMeas,
			StorePath:    *out,
			Resume:       *resume,
		},
		LeaseTTL:    *leaseTTL,
		MaxAttempts: *attempts,
		Logf:        clogf,
	})
	if err != nil {
		logf("%v", err)
		os.Exit(1)
	}

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		logf("listen: %v", err)
		os.Exit(1)
	}
	bound := ln.Addr().String()
	if *addrFile != "" {
		if err := os.WriteFile(*addrFile, []byte(bound+"\n"), 0o644); err != nil {
			logf("addr-file: %v", err)
			os.Exit(1)
		}
	}
	authToken := obs.AuthTokenFromEnv(*token)

	// Workers ship miss dossiers here (sweepworker -flight-ship); the store
	// keeps them bounded and serves them back for post-mortems.
	dossiers := obs.NewDossierStore(obs.DossierStoreConfig{Logf: clogf})

	// Health probes stay unauthenticated (orchestrator probes carry no
	// token); everything else — worker protocol, status pages, dossier
	// store — sits behind the bearer gate. Readiness holds once the
	// coordinator is constructed (store writable, lease ledger loaded),
	// which precedes serving, so /readyz is ready as soon as it answers.
	mux := http.NewServeMux()
	obs.MountHealth(mux, nil)
	mux.Handle("/dossiers", obs.BearerAuth(authToken, dossiers.Handler()))
	mux.Handle("/dossiers/", obs.BearerAuth(authToken, dossiers.Handler()))
	// Lease/ingest history: the coordinator's own registry (leases,
	// reclaims, completions, worker liveness) sampled into a TSDB so the
	// fleet's churn is queryable over windows, not just cumulatively.
	if *histStep > 0 {
		db := obs.NewTSDB(obs.TSDBConfig{Step: *histStep, Retention: *histKeep})
		scraper := obs.StartScraper(obs.ScraperConfig{
			DB:       db,
			Snapshot: coord.Registry().Snapshot,
		})
		defer scraper.Stop()
		for _, rt := range obs.APIRoutes(obs.SingleHistory(db, nil)) {
			mux.Handle(rt.Pattern, obs.BearerAuth(authToken, rt.Handler))
		}
	}
	mux.Handle("/", obs.BearerAuth(authToken, coord.Handler()))
	srv := &http.Server{Handler: mux}
	go func() {
		if err := srv.Serve(ln); err != nil && err != http.ErrServerClosed {
			logf("serve: %v", err)
			os.Exit(1)
		}
	}()
	auth := "open"
	if authToken != "" {
		auth = "bearer-token"
	}
	logf("coordinating on http://%s/ (%s): %d unit(s), lease TTL %s", bound, auth, coord.Summary().Total, *leaseTTL)

	if err := coord.Wait(*wait); err != nil {
		logf("%v", err)
		s := coord.Summary()
		logf("unresolved at exit: %d/%d done, %d failed", s.Done, s.Total, s.Failed)
		os.Exit(1)
	}
	// Workers poll /lease between units; keep answering StatusDone for a
	// beat so slots mid-poll see the sweep resolve instead of a dead port.
	if *linger > 0 {
		time.Sleep(*linger)
	}
	_ = srv.Close()
	if err := coord.Close(); err != nil {
		logf("store: %v", err)
		os.Exit(1)
	}
	if *dossierDir != "" && dossiers.Len() > 0 {
		if err := dossiers.WriteDir(*dossierDir); err != nil {
			logf("dossier-dir: %v", err)
			os.Exit(1)
		}
		logf("flushed %d dossier(s) to %s", dossiers.Len(), *dossierDir)
	}

	s := coord.Summary()
	logf("sweep resolved: %d/%d done (%d reused), %d failed; %d leases, %d reclaims, %d releases, %d duplicates",
		s.Done, s.Total, s.Reused, s.Failed, s.Leases, s.Reclaims, s.Releases, s.Duplicates)
	for _, f := range s.Failures {
		logf("FAILED %s: %s", f.Unit.Spec.ID, f.Err)
	}
	code := 0
	if s.Failed > 0 {
		code = 1
	}

	if *baseline != "" {
		base, err := sweep.ReadStore(*baseline)
		if err != nil {
			logf("baseline: %v", err)
			os.Exit(1)
		}
		drifts := sweep.Compare(base, coord.Records(), sweep.CompareOptions{PerColumn: perCol})
		if len(drifts) > 0 {
			logf("%d drift(s) from baseline %s:", len(drifts), *baseline)
			for _, d := range drifts {
				logf("  %s", d)
			}
			code = 1
		} else {
			logf("matches baseline %s (%d records compared)", *baseline, len(base))
		}
	}
	os.Exit(code)
}
