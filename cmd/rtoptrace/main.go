// Command rtoptrace renders run-level event traces (internal/trace event
// logs) as per-core ASCII timelines and migration-state tallies, so a human
// can see *why* a subframe missed its deadline: which core it ran on, where
// its subtasks migrated, and whether a batch was preempted, recomputed or
// abandoned (the Fig. 12 lifecycle).
//
// Usage:
//
//	rtoptrace -run [-subframes 1000] [-rtt2 550] [-spread 120] [-seed 7]
//	          [-out trace.json] [-metrics metrics.json] [-flight dossierdir]
//	rtoptrace -in trace.json [-from 0] [-to 20000] [-res 200]
//	rtoptrace -in trace.json -job 2:17
//	rtoptrace -in trace.json -misses 5
//	rtoptrace -in trace.json -chrome trace-chrome.json
//	rtoptrace -dossier dossierdir/dossier-000001-deadline-miss.json
//
// -run simulates RT-OPEX on the paper's 4-basestation workload with a
// jittery transport (early arrivals trigger batch preemptions), exports the
// trace, and renders it. -in loads a previously exported trace. -flight
// arms the deadline-miss flight recorder during -run, spooling a miss
// dossier per trigger into the given directory; -dossier renders one such
// dossier as a human-readable post-mortem (stage timeline, slack budget
// per stage against the deadline, migration and scheduler state at the
// trigger).
package main

import (
	"flag"
	"fmt"
	"io"
	"log/slog"
	"os"
	"sort"
	"strings"

	"rtopex/internal/flight"
	"rtopex/internal/harness"
	"rtopex/internal/lte"
	"rtopex/internal/model"
	"rtopex/internal/obs"
	"rtopex/internal/sched"
	"rtopex/internal/stats"
	"rtopex/internal/trace"
)

func main() {
	var (
		run       = flag.Bool("run", false, "simulate a traced RT-OPEX run and export it")
		subframes = flag.Int("subframes", 1000, "subframes per basestation for -run")
		rtt2      = flag.Float64("rtt2", 550, "mean transport RTT/2 in µs for -run")
		spread    = flag.Float64("spread", 120, "uniform transport jitter half-width in µs for -run")
		seed      = flag.Uint64("seed", 7, "workload seed for -run")
		out       = flag.String("out", "rtopex-trace.json", "trace JSON output path for -run")
		metrics   = flag.String("metrics", "", "optional metrics JSON output path for -run")
		in        = flag.String("in", "", "trace JSON to load and render")
		from      = flag.Float64("from", 0, "timeline window start (µs)")
		to        = flag.Float64("to", 0, "timeline window end (µs; 0 = start + 20 ms)")
		res       = flag.Float64("res", 0, "µs per timeline column (0 = window/100)")
		job       = flag.String("job", "", "print the event chain of one subframe, as bs:index")
		misses    = flag.Int("misses", 0, "explain the first N missed subframes")
		chrome    = flag.String("chrome", "", "also export the trace as Chrome trace_event JSON (chrome://tracing, Perfetto)")
		flightDir = flag.String("flight", "", "arm the flight recorder during -run, spooling miss dossiers into this directory")
		dossier   = flag.String("dossier", "", "render one miss dossier file as a post-mortem and exit")
	)
	logCfg := obs.LogFlags(nil)
	flag.Parse()

	logger, err := logCfg.Logger("rtoptrace", os.Stderr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "rtoptrace: %v\n", err)
		os.Exit(2)
	}
	errLogger = logger

	if *dossier != "" {
		d, err := flight.ReadDossierFile(*dossier)
		if err != nil {
			fail(err)
		}
		if err := flight.WritePostMortem(os.Stdout, d); err != nil {
			fail(err)
		}
		return
	}

	var log *trace.EventLog
	switch {
	case *run:
		log, err = tracedRun(*subframes, *rtt2, *spread, *seed, *out, *metrics, *flightDir)
		if err != nil {
			fail(err)
		}
	case *in != "":
		f, err := os.Open(*in)
		if err != nil {
			fail(err)
		}
		log, err = trace.ReadEventLog(f)
		f.Close()
		if err != nil {
			fail(err)
		}
	default:
		errLogger.Error("specify -run or -in <trace.json>")
		flag.Usage()
		os.Exit(2)
	}

	if *chrome != "" {
		if err := writeTo(*chrome, log.WriteChromeTrace); err != nil {
			fail(err)
		}
		fmt.Printf("wrote Chrome trace to %s (open in chrome://tracing or ui.perfetto.dev)\n", *chrome)
	}

	if *job != "" {
		var bs, sf int
		if _, err := fmt.Sscanf(*job, "%d:%d", &bs, &sf); err != nil {
			fail(fmt.Errorf("bad -job %q (want bs:index): %v", *job, err))
		}
		printJob(log, bs, sf)
		return
	}
	if *misses > 0 {
		explainMisses(log, *misses)
		return
	}
	renderTimeline(log, *from, *to, *res)
	fmt.Println()
	printTallies(log)
	fmt.Println()
	printUtilization(log)
}

// errLogger carries the structured logger fail() reports through; set once
// at startup, before any fail path can run.
var errLogger *slog.Logger

func fail(err error) {
	if errLogger != nil {
		errLogger.Error(err.Error())
	} else {
		fmt.Fprintf(os.Stderr, "rtoptrace: %v\n", err)
	}
	os.Exit(1)
}

// uniformTransport draws RTT/2 uniformly in [mean−spread, mean+spread]:
// arrivals land both earlier and later than the schedulers' expectation, so
// hosted batches get preempted — the recovery scenario of §3.2.
type uniformTransport struct{ mean, spread float64 }

func (u uniformTransport) Sample(r *stats.RNG) float64 {
	return u.mean + (r.Float64()-0.5)*2*u.spread
}

// tracedRun simulates RT-OPEX on the paper's evaluation workload with an
// unbounded event ring, exports the trace (and optionally metrics), and
// returns the log for rendering. A non-empty flightDir arms the flight
// recorder with a spool in that directory.
func tracedRun(subframes int, rtt2, spread float64, seed uint64, outPath, metricsPath, flightDir string) (*trace.EventLog, error) {
	w, err := sched.BuildWorkload(sched.WorkloadConfig{
		Basestations: 4, Subframes: subframes, Antennas: 2, Bandwidth: lte.BW10MHz,
		SNRdB: 30, Lm: 4,
		Params: model.PaperGPP, Jitter: model.DefaultJitter, IterLaw: model.DefaultIterationLaw,
		Profiles: trace.DefaultProfiles, FixedMCS: -1,
		Transport:      uniformTransport{mean: rtt2, spread: spread},
		ExpectedRTT2US: rtt2,
		Seed:           seed,
	})
	if err != nil {
		return nil, err
	}
	var rec *flight.Recorder
	if flightDir != "" {
		spool, err := flight.NewSpool(flight.SpoolConfig{Dir: flightDir})
		if err != nil {
			return nil, err
		}
		rec = flight.New(flight.Config{Spool: spool})
	}
	res, err := harness.TracedRunObserved(w, sched.NewRTOPEX(2), 8, 0, nil, rec)
	if rec != nil {
		rec.Close()
		fmt.Printf("flight recorder: %d trigger(s), %d dossier(s) spooled to %s, %d suppressed\n",
			rec.Triggers(), rec.Written(), flightDir, rec.Suppressed())
	}
	if err != nil {
		return nil, err
	}
	f, err := os.Create(outPath)
	if err != nil {
		return nil, err
	}
	if err := res.WriteTraceJSON(f); err != nil {
		f.Close()
		return nil, err
	}
	if err := f.Close(); err != nil {
		return nil, err
	}
	fmt.Printf("wrote %d events to %s (%s)\n", len(res.Log.Events), outPath, res.Metrics)
	if metricsPath != "" {
		if err := writeTo(metricsPath, res.WriteMetricsJSON); err != nil {
			return nil, err
		}
		fmt.Printf("wrote metrics to %s\n", metricsPath)
	}
	return res.Log, nil
}

func writeTo(path string, write func(w io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// sortedEvents returns the log's events ordered by time (stable, so
// emission order breaks ties).
func sortedEvents(log *trace.EventLog) []trace.Event {
	evs := make([]trace.Event, len(log.Events))
	copy(evs, log.Events)
	sort.SliceStable(evs, func(i, j int) bool { return evs[i].Time < evs[j].Time })
	return evs
}

func coreCount(log *trace.EventLog) int {
	n := log.Cores
	for _, e := range log.Events {
		if e.Core+1 > n {
			n = e.Core + 1
		}
	}
	return n
}

// interval is one colored span on a core's lane.
type interval struct {
	from, to float64
	ch       byte
}

// renderTimeline draws one lane per core: '#' running its own subframe,
// 'm' hosting a migrated batch, overlaid markers 'P' (batch preempted),
// 'A' (batch abandoned), 'X' (subframe dropped).
func renderTimeline(log *trace.EventLog, from, to, res float64) {
	evs := sortedEvents(log)
	if len(evs) == 0 {
		fmt.Println("trace is empty")
		return
	}
	if to <= from {
		to = from + 20000
		if last := evs[len(evs)-1].Time; last < to {
			to = last + 1
		}
	}
	if res <= 0 {
		res = (to - from) / 100
	}
	cores := coreCount(log)
	cols := int((to-from)/res + 0.5)
	if cols < 1 {
		cols = 1
	}

	lanes := make([][]byte, cores)
	for i := range lanes {
		lanes[i] = []byte(strings.Repeat(".", cols))
	}
	paint := func(core int, iv interval) {
		if core < 0 || core >= cores {
			return
		}
		lo := int((iv.from - from) / res)
		hi := int((iv.to - from) / res)
		for c := lo; c <= hi && c < cols; c++ {
			if c < 0 {
				continue
			}
			lanes[core][c] = iv.ch
		}
	}
	// Markers overlay the lanes only after every interval is painted, so a
	// preemption marker is not clobbered by the preempting job's own span.
	type marker struct {
		core int
		t    float64
		ch   byte
	}
	var marks []marker
	mark := func(core int, t float64, ch byte) { marks = append(marks, marker{core, t, ch}) }

	// Replay: open own-job and hosted-batch intervals per core.
	jobStart := make(map[int]float64)   // core → own-job start
	batchStart := make(map[int]float64) // core → hosted-batch start
	for _, e := range evs {
		switch e.Event {
		case trace.EvStart:
			jobStart[e.Core] = e.Time
		case trace.EvFinish, trace.EvDrop:
			if s, ok := jobStart[e.Core]; ok {
				paint(e.Core, interval{s, e.Time, '#'})
				delete(jobStart, e.Core)
			}
			if e.Event == trace.EvDrop {
				mark(e.Core, e.Time, 'X')
			}
		case trace.EvMigPlan:
			batchStart[e.Core] = e.Time
		case trace.EvMigComplete, trace.EvMigPreempt, trace.EvMigAbandon:
			if s, ok := batchStart[e.Core]; ok {
				paint(e.Core, interval{s, e.Time, 'm'})
				delete(batchStart, e.Core)
			}
			switch e.Event {
			case trace.EvMigPreempt:
				mark(e.Core, e.Time, 'P')
			case trace.EvMigAbandon:
				mark(e.Core, e.Time, 'A')
			}
		}
	}
	// Close any interval still open at the window edge.
	for core, s := range jobStart {
		paint(core, interval{s, to, '#'})
	}
	for core, s := range batchStart {
		paint(core, interval{s, to, 'm'})
	}
	for _, mk := range marks {
		if mk.core < 0 || mk.core >= cores {
			continue
		}
		c := int((mk.t - from) / res)
		if c >= 0 && c < cols {
			lanes[mk.core][c] = mk.ch
		}
	}

	fmt.Printf("per-core timeline %s, [%.0f, %.0f] µs, %.0f µs/col\n", log.Scheduler, from, to, res)
	fmt.Println("  '#' own subframe  'm' hosted batch  'P' preempted  'A' abandoned  'X' dropped")
	for i, lane := range lanes {
		fmt.Printf("core %2d |%s|\n", i, lane)
	}
}

// printTallies reports the migration-batch lifecycle counts of Fig. 12 and
// the terminal job outcomes.
func printTallies(log *trace.EventLog) {
	kinds := map[trace.Kind]int{}
	outcomes := map[string]int{}
	for _, e := range log.Events {
		kinds[e.Event]++
		if e.Event == trace.EvFinish {
			outcomes[e.Detail]++
		}
	}
	fmt.Println("migration-batch lifecycle:")
	for _, k := range []trace.Kind{
		trace.EvMigPlan, trace.EvMigComplete, trace.EvMigPreempt,
		trace.EvMigConsume, trace.EvMigWait, trace.EvMigRecompute, trace.EvMigAbandon,
	} {
		fmt.Printf("  %-13s %d\n", k, kinds[k])
	}
	fmt.Printf("jobs: %d arrivals, %d starts, %d drops", kinds[trace.EvArrive], kinds[trace.EvStart], kinds[trace.EvDrop])
	for _, d := range []string{"ack", "late", "decodefail"} {
		fmt.Printf(", %d %s", outcomes[d], d)
	}
	fmt.Println()
	if log.Dropped > 0 {
		fmt.Printf("note: ring overflow dropped %d early events; tallies cover the tail of the run\n", log.Dropped)
	}
}

// printUtilization replays the log through the obs accountant and prints
// each core's busy/migration/idle split — the numeric complement of the
// ASCII timeline's '#' and 'm' spans, over the full run rather than one
// 20 ms window.
func printUtilization(log *trace.EventLog) {
	reports := obs.AccountantFromLog(log).Reports(coreCount(log), 0)
	if len(reports) == 0 {
		return
	}
	fmt.Println("per-core utilization over the full trace:")
	var busy, mig float64
	for _, r := range reports {
		fmt.Printf("  core %2d: busy %.3f  mig %.3f  idle %.3f  (busy %.1f ms, hosted %.1f ms)\n",
			r.Core, r.Busy, r.Migration, r.Idle, r.BusyUS/1000, r.MigrationUS/1000)
		busy += r.Busy
		mig += r.Migration
	}
	n := float64(len(reports))
	fmt.Printf("  mean:    busy %.3f  mig %.3f  idle %.3f\n", busy/n, mig/n, 1-(busy+mig)/n)
	if log.Dropped > 0 {
		fmt.Printf("  note: ring overflow dropped %d early events; fractions cover the tail\n", log.Dropped)
	}
}

// printJob dumps the event chain of one subframe.
func printJob(log *trace.EventLog, bs, sf int) {
	n := 0
	for _, e := range sortedEvents(log) {
		if e.BS != bs || e.Subframe != sf {
			continue
		}
		n++
		fmt.Printf("%10.1f µs  core %2d  %-13s %s\n", e.Time, e.Core, e.Event, e.Detail)
	}
	if n == 0 {
		fmt.Printf("no events for subframe %d:%d\n", bs, sf)
	}
}

// explainMisses prints the event chains of the first n subframes that
// dropped or finished late.
func explainMisses(log *trace.EventLog, n int) {
	type key struct{ bs, sf int }
	seen := map[key]bool{}
	shown := 0
	for _, e := range sortedEvents(log) {
		miss := e.Event == trace.EvDrop || (e.Event == trace.EvFinish && e.Detail == "late")
		if !miss || seen[key{e.BS, e.Subframe}] {
			continue
		}
		seen[key{e.BS, e.Subframe}] = true
		fmt.Printf("-- subframe %d:%d missed (%s %s) --\n", e.BS, e.Subframe, e.Event, e.Detail)
		printJob(log, e.BS, e.Subframe)
		shown++
		if shown >= n {
			return
		}
	}
	if shown == 0 {
		fmt.Println("no missed subframes in trace")
	}
}
