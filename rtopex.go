// Package rtopex is a from-scratch Go reproduction of "RT-OPEX: Flexible
// Scheduling for Cloud-RAN Processing" (Garikipati, Fawaz, Shin — CoNEXT
// 2016): an LTE uplink PHY, an end-to-end C-RAN timing model, and the three
// subframe schedulers the paper evaluates — partitioned, global (EDF), and
// RT-OPEX, which opportunistically migrates parallelizable subtasks (FFT
// symbols, turbo code blocks) into the idle gaps of other cores.
//
// The package has three layers, all usable independently:
//
//   - The PHY link: Transmitter/Receiver encode and decode real PUSCH
//     subframes (turbo coding, rate matching, SC-FDMA, soft demapping),
//     with the receive chain decomposed into the paper's task/subtask
//     pipeline so its stages can run — and migrate — concurrently.
//
//   - The scheduler simulation: BuildWorkload materializes a trace-driven
//     job set (Eq. 1 processing times, platform jitter, transport latency)
//     and Simulate runs it under any Scheduler on a deterministic
//     discrete-event multicore, reporting deadline-miss metrics.
//
//   - The experiment harness: RunExperiment regenerates any table or
//     figure of the paper's evaluation by id (see Experiments).
//
// See DESIGN.md for the system inventory and EXPERIMENTS.md for the
// paper-vs-reproduction comparison of every experiment.
package rtopex

import (
	"flag"
	"log/slog"

	"rtopex/internal/channel"
	"rtopex/internal/harness"
	"rtopex/internal/lte"
	"rtopex/internal/model"
	"rtopex/internal/obs"
	"rtopex/internal/phy"
	"rtopex/internal/sched"
	"rtopex/internal/sweep"
	"rtopex/internal/trace"
	"rtopex/internal/transport"
)

// PHY layer.
type (
	// PHYConfig configures one basestation's uplink PHY.
	PHYConfig = phy.Config
	// Transmitter synthesizes PUSCH subframes (for test vectors and the
	// testbed emulation).
	Transmitter = phy.Transmitter
	// Receiver decodes PUSCH subframes with the FFT → demod → decode task
	// pipeline of the paper's Fig. 5.
	Receiver = phy.Receiver
	// RxResult reports one subframe's decode outcome.
	RxResult = phy.Result
	// HARQReceiver accumulates soft bits across retransmissions
	// (chase/incremental-redundancy combining).
	HARQReceiver = phy.HARQReceiver
	// Stage is one receive task: independent subtasks behind a barrier.
	Stage = phy.Stage
	// Bandwidth is an LTE channel configuration (use BW5MHz/BW10MHz/BW20MHz).
	Bandwidth = lte.Bandwidth
	// Channel is the AWGN/flat-fading model used to exercise the link.
	Channel = channel.Model
	// MultipathChannel is the frequency-selective tapped-delay-line model.
	MultipathChannel = channel.Multipath
	// DLTransmitter encodes downlink (PDSCH) subframes — the Tx-processing
	// side of the paper's Fig. 8 timeline.
	DLTransmitter = phy.DLTransmitter
	// DLReceiver is the UE-side PDSCH receiver used to validate the node's
	// downlink encoding.
	DLReceiver = phy.DLReceiver
)

// Standard LTE bandwidths.
var (
	BW5MHz  = lte.BW5MHz
	BW10MHz = lte.BW10MHz
	BW20MHz = lte.BW20MHz
)

// NewTransmitter builds a PUSCH transmitter.
func NewTransmitter(cfg PHYConfig) (*Transmitter, error) { return phy.NewTransmitter(cfg) }

// NewReceiver builds a PUSCH receiver.
func NewReceiver(cfg PHYConfig) (*Receiver, error) { return phy.NewReceiver(cfg) }

// NewHARQReceiver builds a soft-combining HARQ receiver.
func NewHARQReceiver(cfg PHYConfig) (*HARQReceiver, error) { return phy.NewHARQReceiver(cfg) }

// HARQRVSequence is the LTE redundancy-version cycling order (0, 2, 3, 1).
var HARQRVSequence = phy.RVSequence

// NewChannel builds an AWGN channel with a flat per-antenna gain.
func NewChannel(snrDB float64, antennas int, seed uint64) (*Channel, error) {
	return channel.New(snrDB, antennas, seed)
}

// NewMultipathChannel builds a frequency-selective fading channel; use the
// standard channel.EPA / channel.EVA tap profiles via EPAProfile/EVAProfile.
func NewMultipathChannel(snrDB float64, antennas int, taps []channel.Tap, seed uint64) (*MultipathChannel, error) {
	return channel.NewMultipath(snrDB, antennas, taps, seed)
}

// Standard 3GPP delay profiles for NewMultipathChannel.
var (
	EPAProfile = channel.EPA
	EVAProfile = channel.EVA
)

// NewDLTransmitter builds a PDSCH (downlink) transmitter.
func NewDLTransmitter(cfg PHYConfig) (*DLTransmitter, error) { return phy.NewDLTransmitter(cfg) }

// NewDLReceiver builds a UE-side PDSCH receiver.
func NewDLReceiver(cfg PHYConfig) (*DLReceiver, error) { return phy.NewDLReceiver(cfg) }

// Timing model.
type (
	// ModelParams are the Eq. (1) coefficients; PaperGPP is Table 1.
	ModelParams = model.Params
	// TaskTimes splits a subframe's processing across FFT/demod/decode.
	TaskTimes = model.TaskTimes
	// Jitter is the platform-error model of Fig. 3(d).
	Jitter = model.Jitter
	// IterationLaw models the SNR-dependent turbo iteration count.
	IterationLaw = model.IterationLaw
)

// Calibrated model defaults.
var (
	// PaperGPP is the paper's Table 1 fit (w0..w3 in µs, r²=0.992).
	PaperGPP = model.PaperGPP
	// DefaultJitter matches Fig. 3(d)'s error tail.
	DefaultJitter = model.DefaultJitter
	// DefaultIterationLaw matches the evaluation's iteration statistics.
	DefaultIterationLaw = model.DefaultIterationLaw
)

// Scheduling layer.
type (
	// WorkloadConfig describes a C-RAN workload (basestations, traces,
	// transport, model parameters).
	WorkloadConfig = sched.WorkloadConfig
	// Workload is a materialized job set, replayable under any scheduler.
	Workload = sched.Workload
	// Job is one subframe decoding task.
	Job = sched.Job
	// Scheduler is a C-RAN subframe scheduler under simulation.
	Scheduler = sched.Scheduler
	// Metrics aggregates deadline-miss and migration statistics.
	Metrics = sched.Metrics
	// Partitioned is the offline-partitioned scheduler (§3.1.1).
	Partitioned = sched.Partitioned
	// Global is the shared-queue EDF scheduler (§3.1.2).
	Global = sched.Global
	// RTOPEX is the paper's migrating scheduler (§3.2).
	RTOPEX = sched.RTOPEX
	// StaticParallel is the BigStation-style Table 2 comparator: a fixed
	// design-time fan-out of every subframe's subtasks.
	StaticParallel = sched.StaticParallel
	// PRAN is the planner-based Table 2 comparator: dynamic resource pool,
	// subtask granularity, but decisions made before processing starts.
	PRAN = sched.PRAN
	// SemiPartitioned is the task-level (whole-job) migration baseline.
	SemiPartitioned = sched.SemiPartitioned
)

// Transport models.
type (
	// TransportSampler yields one-way (RTT/2) transport latencies.
	TransportSampler = transport.Sampler
	// FixedTransport is a constant RTT/2 (the paper's evaluation setup).
	FixedTransport = transport.FixedPath
	// TransportPath is fronthaul + jittery cloud segment.
	TransportPath = transport.Path
)

// Workload traces.
type (
	// TraceProfile parameterizes a basestation load process.
	TraceProfile = trace.Profile
	// Trace is a per-millisecond normalized load sequence.
	Trace = trace.Trace
)

// DefaultTraceProfiles are four basestations spanning Fig. 14's diversity.
var DefaultTraceProfiles = trace.DefaultProfiles

// NewPartitioned creates a partitioned scheduler with c cores per BS
// (the paper's ⌈Tmax⌉, 2 in the evaluation).
func NewPartitioned(coresPerBS int) *Partitioned { return sched.NewPartitioned(coresPerBS) }

// NewGlobal creates the shared-queue scheduler with default overheads.
func NewGlobal() *Global { return sched.NewGlobal() }

// NewRTOPEX creates RT-OPEX over a c-cores-per-BS partitioned schedule.
func NewRTOPEX(coresPerBS int) *RTOPEX { return sched.NewRTOPEX(coresPerBS) }

// NewStaticParallel creates the static-fan-out comparator with k cores per
// basestation.
func NewStaticParallel(coresPerBS int) *StaticParallel { return sched.NewStaticParallel(coresPerBS) }

// NewPRAN creates the load-planned dynamic-pool comparator.
func NewPRAN() *PRAN { return sched.NewPRAN() }

// NewSemiPartitioned creates the whole-job-migration baseline.
func NewSemiPartitioned(coresPerBS int) *SemiPartitioned {
	return sched.NewSemiPartitioned(coresPerBS)
}

// BuildWorkload materializes a deterministic job set from a configuration.
func BuildWorkload(cfg WorkloadConfig) (*Workload, error) { return sched.BuildWorkload(cfg) }

// Simulate runs a workload under a scheduler on the given core count.
func Simulate(w *Workload, s Scheduler, cores int) (*Metrics, error) {
	return sched.Run(w, s, cores)
}

// Experiment harness.
type (
	// ExperimentTable is a regenerated paper table/figure.
	ExperimentTable = harness.Table
	// ExperimentOptions scale an experiment run.
	ExperimentOptions = harness.Options
)

// Experiments lists the runnable experiment ids (fig1..fig19, table1,
// ablation-*).
func Experiments() []string { return harness.IDs() }

// RunExperiment regenerates one table or figure of the paper.
func RunExperiment(id string, o ExperimentOptions) (*ExperimentTable, error) {
	return harness.Run(id, o)
}

// Sweep orchestration: run the registry on a worker pool with deterministic
// per-shard seeds, stream artifacts to a JSON-lines store, and gate fresh
// results against checked-in baselines. See internal/sweep for the
// determinism contract.
type (
	// ExperimentSpec describes one registered experiment.
	ExperimentSpec = harness.Spec
	// SweepConfig describes one sweep (ids, workers, scale, store, resume).
	SweepConfig = sweep.Config
	// SweepResult summarizes a finished sweep.
	SweepResult = sweep.Result
	// SweepRecord is one stored artifact: a table keyed by its config hash.
	SweepRecord = sweep.Record
	// SweepCompareOptions configure the baseline regression gate.
	SweepCompareOptions = sweep.CompareOptions
	// SweepTolerance bounds allowed numeric drift of one table cell.
	SweepTolerance = sweep.Tolerance
	// SweepDrift is one detected baseline divergence.
	SweepDrift = sweep.Drift
)

// ExperimentSpecs lists the registry in the sweep engine's shard order.
func ExperimentSpecs() []ExperimentSpec { return harness.Specs() }

// RunSweep executes a sweep.
func RunSweep(cfg SweepConfig) (*SweepResult, error) { return sweep.Run(cfg) }

// ReadSweepStore loads a JSON-lines artifact store.
func ReadSweepStore(path string) ([]*SweepRecord, error) { return sweep.ReadStore(path) }

// CompareSweeps diffs a fresh sweep against a baseline store and returns
// every drift (empty means the gate passes).
func CompareSweeps(baseline, fresh []*SweepRecord, o SweepCompareOptions) []SweepDrift {
	return sweep.Compare(baseline, fresh, o)
}

// ParseSweepTolerances parses "column=rel[,abs]" or
// "experiment/column=rel[,abs]" specs (the repeatable -tol flag) into the
// PerColumn map CompareSweeps takes.
func ParseSweepTolerances(specs []string) (map[string]SweepTolerance, error) {
	return sweep.ParseTolerances(specs)
}

// AggregateSweepReplicas reduces a replicated sweep's records to one
// mean ± 95% CI summary table per experiment (Student-t over the replicas).
func AggregateSweepReplicas(records []*SweepRecord) []*ExperimentTable {
	return sweep.AggregateReplicas(records)
}

// Observability plane: a mergeable live-metrics registry plus an opt-in
// HTTP endpoint bundling Prometheus /metrics with expvar and pprof. See
// internal/obs for the design.
type (
	// ObsRegistry is a concurrency-safe, mergeable metrics registry.
	ObsRegistry = obs.Registry
	// ObsSnapshot is a registry's serializable, deterministic state.
	ObsSnapshot = obs.Snapshot
	// CoreReport is one core's busy/migration/idle utilization over a run.
	CoreReport = obs.CoreReport
)

// Distributed observability: workers push full registry snapshots to a
// central collector (cmd/obscollect), which merges them exactly and serves
// the unified fleet view. See internal/obs/README.md for the wire format.
type (
	// ObsLabel is one key=value dimension of a metric series.
	ObsLabel = obs.Label
	// ObsSource identifies one pushing process (host, pid, labels).
	ObsSource = obs.Source
	// ObsPusher streams snapshots to a collector with bounded retry.
	ObsPusher = obs.Pusher
	// ObsPusherConfig configures an ObsPusher.
	ObsPusherConfig = obs.PusherConfig
	// ObsCollector is the central merge point for pushed snapshots.
	ObsCollector = obs.Collector
	// ObsCollectorConfig configures an ObsCollector.
	ObsCollectorConfig = obs.CollectorConfig
)

// ObsLogConfig carries the shared -log-format/-log-level flag values used
// by every CLI surface (fleet daemons and the experiment commands alike).
type ObsLogConfig = obs.LogConfig

// ObsLogFlags registers -log-format and -log-level on fs (the global flag
// set when nil) and returns the config the flags fill at Parse time.
func ObsLogFlags(fs *flag.FlagSet) *ObsLogConfig { return obs.LogFlags(fs) }

// ObsPrintf adapts a structured logger to logf(format, args...) plumbing.
func ObsPrintf(l *slog.Logger) func(format string, args ...any) { return obs.Printf(l) }

// ObsL is shorthand for constructing an ObsLabel.
func ObsL(key, value string) ObsLabel { return obs.L(key, value) }

// DefaultObsSource derives this process's push identity (hostname-pid).
func DefaultObsSource(labels ...ObsLabel) ObsSource { return obs.DefaultSource(labels...) }

// NewObsPusher builds a push client for the collector at cfg.Addr.
func NewObsPusher(cfg ObsPusherConfig) (*ObsPusher, error) { return obs.NewPusher(cfg) }

// NewObsCollector creates an empty collector (see cmd/obscollect for the
// serving binary).
func NewObsCollector(cfg ObsCollectorConfig) *ObsCollector { return obs.NewCollector(cfg) }

// NewObsRegistry creates an empty metrics registry.
func NewObsRegistry() *ObsRegistry { return obs.NewRegistry() }

// ServeObs exposes the registry's /metrics, /debug/vars and /debug/pprof/
// on addr (e.g. ":6060"); it returns the bound address and a stop func.
func ServeObs(addr string, reg *ObsRegistry) (boundAddr string, stop func(), err error) {
	return obs.Serve(addr, reg)
}

// PublishExperimentTable exposes a finished table's summary gauges
// (per-column means, miss rates) on a live registry.
func PublishExperimentTable(reg *ObsRegistry, tb *ExperimentTable) {
	harness.PublishTable(reg, tb)
}
